#include "net/server.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <unordered_map>
#include <utility>

#include "api/wire.h"
#include "net/framer.h"
#include "obs/trace.h"
#include "obs/wellknown.h"

namespace bgpcu::net {


namespace {

/// How many over-limit connections may hold a graceful-rejection handler
/// (two threads each, bounded by hello_timeout_ms) at once; everything past
/// this is closed abruptly so a connection flood cannot scale thread count.
constexpr std::size_t kGracefulRejectSlots = 8;

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ------------------------------------------------------------ ConnHandler --

/// One live connection: reader thread (frames in, dispatch), writer thread
/// (bounded queue out). Held by shared_ptr from the server's connection
/// list and, weakly, from subscription callbacks living inside the Service.
class Server::ConnHandler : public std::enable_shared_from_this<Server::ConnHandler> {
 public:
  /// `reject` marks an over-limit connection: its reader consumes the
  /// client's first frame, answers kServerBusy, and tears down. Rejecting
  /// through the normal handler (rather than write-and-close in the accept
  /// loop) matters on real TCP: closing with the client's unread hello
  /// still buffered raises RST, which can discard the queued error frame.
  ConnHandler(Server& server, std::unique_ptr<Connection> conn, bool reject = false)
      : server_(server),
        conn_(std::move(conn)),
        reject_(reject),
        rate_tokens_(static_cast<double>(server.config_.request_burst)) {}

  void start() {
    auto self = shared_from_this();
    reader_ = std::thread([self] { self->reader_loop(); });
    writer_ = std::thread([self] { self->writer_loop(); });
  }

  /// Queues one outbound frame. Never blocks: an overflowing queue means a
  /// slow consumer, which is aborted rather than waited for. Safe from any
  /// thread, including Service publish callbacks.
  void enqueue(std::vector<std::uint8_t> frame) {
    bool overflow = false;
    {
      const std::lock_guard lock(queue_mutex_);
      if (queue_closed_) return;
      if (queue_.size() >= server_.config_.write_queue_limit) {
        overflow = true;
        queue_closed_ = true;
        queue_.clear();
      } else {
        queue_.push_back(std::move(frame));
        obs::metrics().net_write_queue_hwm.max_of(
            static_cast<std::int64_t>(queue_.size()));
      }
    }
    queue_cv_.notify_one();
    if (overflow) {
      server_.stats_.slow_disconnects.fetch_add(1);
      obs::metrics().net_slow_disconnects.add(1);
      abort_connection();
    }
  }

  /// Hard teardown from outside (server stop or queue overflow): drop
  /// pending output and unblock both threads. Does not join.
  void abort_connection() {
    {
      const std::lock_guard lock(queue_mutex_);
      queue_closed_ = true;
      queue_.clear();
    }
    queue_cv_.notify_all();
    conn_->close();
  }

  void join() {
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

  [[nodiscard]] bool done() const noexcept {
    return reader_done_.load() && writer_done_.load();
  }

 private:
  /// Signals the writer that no further frames are coming; it drains what is
  /// queued, then half-closes toward the client.
  void close_queue() {
    {
      const std::lock_guard lock(queue_mutex_);
      queue_closed_ = true;
    }
    queue_cv_.notify_all();
  }

  void send_error(std::uint64_t request_id, api::ErrorCode code, const std::string& message) {
    // protocol_errors counts invalid client *input*; auth failures, busy
    // rejections, and internal failures have their own accounting.
    if (code == api::ErrorCode::kBadRequest || code == api::ErrorCode::kUnknownSubscription) {
      server_.stats_.protocol_errors.fetch_add(1);
      obs::metrics().net_protocol_errors.add(1);
    }
    enqueue(api::encode_error({request_id, code, message}));
  }

  void reader_loop() {
    FrameBuffer frames(server_.config_.max_request_payload);
    std::vector<std::uint8_t> chunk(16384);
    // The first frame runs against a deadline (cleared once the handshake
    // lands): a connect that never speaks cannot hold this slot forever.
    if (server_.config_.hello_timeout_ms > 0) {
      conn_->set_read_timeout(std::chrono::milliseconds(server_.config_.hello_timeout_ms));
    }
    bool fatal = false;
    while (!fatal) {
      std::size_t n = 0;
      try {
        n = conn_->read_some(chunk);
      } catch (const TransportError&) {
        break;
      }
      if (n == 0) break;  // EOF / peer half-closed: flush and finish
      last_rx_ms_.store(steady_now_ms());
      obs::metrics().net_bytes_in.add(n);
      frames.append(std::span(chunk.data(), n));
      try {
        for (auto frame = frames.extract(); !frame.empty(); frame = frames.extract()) {
          server_.stats_.frames_received.fetch_add(1);
          obs::metrics().net_frames_received.add(1);
          if (!handle_frame(frame)) {
            fatal = true;
            break;
          }
        }
      } catch (const api::WireFormatError& e) {
        send_error(0, api::ErrorCode::kBadRequest, e.what());
        fatal = true;
      }
    }
    // Teardown: the service must stop delivering into this connection
    // before the writer drains out.
    for (const auto& [local_id, service_id] : subscriptions_) {
      (void)server_.service_.unsubscribe(service_id);
    }
    subscriptions_.clear();
    close_queue();
    reader_done_.store(true);
  }

  /// Rejects the hello token / protocol version; returns true when the
  /// handshake may proceed. Shared by the legacy and feature handshakes.
  bool check_handshake(std::uint8_t protocol, const std::string& token) {
    // Exact match: an older client would misdecode responses whose
    // payloads grew since its version (e.g. the v2 stats fields), so the
    // handshake is where the mismatch must fail, loudly and by name.
    if (protocol != api::kProtocolVersion) {
      send_error(0, api::ErrorCode::kBadRequest,
                 "unsupported protocol version " + std::to_string(protocol));
      return false;
    }
    if (!server_.config_.auth_token.empty() && token != server_.config_.auth_token) {
      server_.stats_.auth_failures.fetch_add(1);
      obs::metrics().net_auth_failures.add(1);
      send_error(0, api::ErrorCode::kAuthFailed, "bad auth token");
      return false;
    }
    return true;
  }

  /// Token-bucket admission for kRequest/kSubscribe: refilled continuously
  /// at max_requests_per_sec up to request_burst. Reader-thread only.
  bool admit_request() {
    const auto rate = server_.config_.max_requests_per_sec;
    if (rate == 0) return true;
    const auto now = std::chrono::steady_clock::now();
    const auto elapsed = std::chrono::duration<double>(now - rate_last_).count();
    rate_last_ = now;
    rate_tokens_ = std::min<double>(static_cast<double>(server_.config_.request_burst),
                                    rate_tokens_ + elapsed * rate);
    if (rate_tokens_ >= 1.0) {
      rate_tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  /// Sheds one over-budget request before it reaches the service: kBusy with
  /// a retry-after hint for feature-negotiated peers, classic kServerBusy
  /// otherwise. Non-fatal — the connection (and its subscriptions) live on.
  void shed_request(std::uint64_t request_id) {
    server_.stats_.requests_shed.fetch_add(1);
    obs::metrics().net_requests_shed.add(1);
    const auto message = "request rate limit exceeded";
    if (features_ & api::kFeatureBusyRetry) {
      enqueue(api::encode_busy(
          {request_id, server_.config_.busy_retry_after_ms, message}));
    } else {
      enqueue(api::encode_error({request_id, api::ErrorCode::kServerBusy, message}));
    }
  }

  /// Dispatches one complete inbound frame. Returns false on a fatal
  /// protocol violation (an error frame has been queued; stop reading).
  bool handle_frame(const std::vector<std::uint8_t>& frame) {
    const auto type = api::peek_frame_type(frame);
    if (reject_) {
      // The client's opening frame has now been consumed, so the error can
      // reach it without a reset racing the close. A feature-negotiating
      // client gets the structured shed with its retry-after hint.
      if (type == api::FrameType::kHello2) {
        server_.stats_.busy_rejections.fetch_add(1);
        obs::metrics().net_busy_rejections.add(1);
        enqueue(api::encode_busy(
            {0, server_.config_.busy_retry_after_ms, "connection limit reached"}));
        return false;
      }
      send_error(0, api::ErrorCode::kServerBusy, "connection limit reached");
      return false;
    }
    if (!hello_done_) {
      if (type == api::FrameType::kHello2) {
        const auto hello = api::decode_hello2(frame);
        if (!check_handshake(hello.protocol, hello.token)) return false;
        features_ = hello.features & api::kAllFeatures;
        hello_done_ = true;
        if (features_ & api::kFeatureKeepalive) keepalive_negotiated_.store(true);
        conn_->set_read_timeout(std::chrono::milliseconds::zero());
        api::Welcome2Frame welcome;
        welcome.protocol = api::kProtocolVersion;
        welcome.epoch = server_.service_.epoch();
        welcome.features = features_;
        welcome.replay_horizon = server_.service_.replay_horizon();
        enqueue(api::encode_welcome2(welcome));
        return true;
      }
      if (type != api::FrameType::kHello) {
        send_error(0, api::ErrorCode::kBadRequest, "first frame must be hello");
        return false;
      }
      const auto hello = api::decode_hello(frame);
      if (!check_handshake(hello.protocol, hello.token)) return false;
      hello_done_ = true;
      conn_->set_read_timeout(std::chrono::milliseconds::zero());
      enqueue(api::encode_welcome({api::kProtocolVersion, server_.service_.epoch()}));
      return true;
    }
    switch (type) {
      case api::FrameType::kPing: {
        // Keepalive probe from a feature-negotiated client; a legacy peer
        // sending one is as unexpected as any other reserved type.
        if (features_ == 0) return unexpected_type(type);
        const auto ping = api::decode_ping(frame);
        server_.stats_.pings_received.fetch_add(1);
        obs::metrics().net_pings_received.add(1);
        enqueue(api::encode_ping(ping, api::FrameType::kPong));
        return true;
      }
      case api::FrameType::kPong: {
        if (features_ == 0) return unexpected_type(type);
        // The probe's job was done by the bytes arriving (last_rx_ms_ is
        // already fresh); decode only to validate.
        (void)api::decode_ping(frame, api::FrameType::kPong);
        return true;
      }
      case api::FrameType::kRequest: {
        auto& m = obs::metrics();
        obs::StageTimer decode_span(m.request_stage_decode_ns);
        const auto request = api::decode_request(frame);
        decode_span.stop();
        if (!admit_request()) {
          shed_request(request.request_id);
          return true;
        }
        try {
          obs::StageTimer dispatch_span(m.request_stage_dispatch_ns);
          auto response = server_.service_.query(request.request);
          dispatch_span.stop();
          obs::StageTimer encode_span(m.request_stage_encode_ns);
          auto encoded = api::encode_response({request.request_id, std::move(response)});
          encode_span.stop();
          obs::StageTimer enqueue_span(m.request_stage_enqueue_ns);
          enqueue(std::move(encoded));
        } catch (const std::exception& e) {
          send_error(request.request_id, api::ErrorCode::kInternal, e.what());
        }
        return true;
      }
      case api::FrameType::kSubscribe: {
        const auto subscribe = api::decode_subscribe(frame);
        if (!admit_request()) {
          shed_request(subscribe.request_id);
          return true;
        }
        if (subscriptions_.size() >= server_.config_.max_subscriptions_per_connection) {
          send_error(subscribe.request_id, api::ErrorCode::kBadRequest,
                     "subscription limit (" +
                         std::to_string(server_.config_.max_subscriptions_per_connection) +
                         ") reached on this connection");
          return true;  // non-fatal: existing subscriptions keep streaming
        }
        const auto local_id = next_subscription_id_++;
        // Register with the service *before* acking: once the client sees
        // the ack, a publish on any thread is guaranteed to reach it.
        // Replayed events are therefore enqueued ahead of the ack — clients
        // buffer events at any time, so that ordering is fine.
        std::weak_ptr<ConnHandler> weak = weak_from_this();
        // Resume-negotiated peers learn atomically with the replay whether
        // the event log still covered their replay_from epoch; a false flag
        // tells the client to re-sync from a snapshot instead of trusting
        // the (lossy) replayed tail.
        bool replay_complete = true;
        const bool report_coverage = (features_ & api::kFeatureResume) != 0;
        const auto service_id = server_.service_.subscribe(
            subscribe.filter,
            [weak, local_id](const api::EpochDelta& delta) {
              if (const auto self = weak.lock()) {
                self->enqueue(api::encode_event({local_id, delta}));
              }
            },
            subscribe.replay_from, report_coverage ? &replay_complete : nullptr);
        subscriptions_.emplace(local_id, service_id);
        api::SubscribedFrame ack;
        ack.request_id = subscribe.request_id;
        ack.subscription_id = local_id;
        if (report_coverage) ack.replay_complete = replay_complete;
        enqueue(api::encode_subscribed(ack));
        return true;
      }
      case api::FrameType::kUnsubscribe: {
        const auto unsubscribe = api::decode_unsubscribe(frame);
        const auto it = subscriptions_.find(unsubscribe.subscription_id);
        if (it == subscriptions_.end()) {
          send_error(unsubscribe.request_id, api::ErrorCode::kUnknownSubscription,
                     "unknown subscription " + std::to_string(unsubscribe.subscription_id));
          return true;  // non-fatal: the client may have raced a disconnect
        }
        (void)server_.service_.unsubscribe(it->second);
        subscriptions_.erase(it);
        api::SubscribedFrame ack;
        ack.request_id = unsubscribe.request_id;
        ack.subscription_id = unsubscribe.subscription_id;
        enqueue(api::encode_subscribed(ack, api::FrameType::kUnsubscribed));
        return true;
      }
      default:
        return unexpected_type(type);
    }
  }

  bool unexpected_type(api::FrameType type) {
    send_error(0, api::ErrorCode::kBadRequest,
               "unexpected frame type " +
                   std::to_string(static_cast<int>(type)) + " from client");
    return false;
  }

  [[nodiscard]] bool keepalive_enabled() const {
    return keepalive_negotiated_.load() && server_.config_.keepalive_interval_ms > 0;
  }

  /// How long the writer may sit idle before the next keepalive action:
  /// the dead-peer deadline while a probe is outstanding, else the probe
  /// cadence. Writer-thread only.
  [[nodiscard]] std::chrono::milliseconds idle_wait() const {
    return std::chrono::milliseconds(ping_outstanding_
                                         ? server_.config_.keepalive_timeout_ms
                                         : server_.config_.keepalive_interval_ms);
  }

  /// Runs on the writer thread after an idle keepalive interval. Returns
  /// false once the peer is declared dead (connection aborted).
  bool keepalive_tick() {
    const auto now = steady_now_ms();
    const auto last_rx = last_rx_ms_.load();
    if (ping_outstanding_) {
      if (last_rx >= ping_sent_ms_) {
        // Anything inbound since the probe proves the peer is alive.
        ping_outstanding_ = false;
        return true;
      }
      if (now - ping_sent_ms_ >= server_.config_.keepalive_timeout_ms) {
        server_.stats_.keepalive_disconnects.fetch_add(1);
        obs::metrics().net_keepalive_disconnects.add(1);
        abort_connection();
        return false;
      }
      return true;
    }
    if (now - last_rx < server_.config_.keepalive_interval_ms) return true;
    // We *are* the writer and the queue is idle, so the probe is written
    // directly — it cannot deadlock with the queue, and a closed queue
    // cannot swallow it.
    ping_outstanding_ = true;
    ping_sent_ms_ = now;
    server_.stats_.keepalive_probes.fetch_add(1);
    obs::metrics().net_keepalive_probes.add(1);
    const auto probe = api::encode_ping({++ping_nonce_});
    if (!conn_->write_all(probe)) {
      abort_connection();
      return false;
    }
    server_.stats_.frames_sent.fetch_add(1);
    auto& m = obs::metrics();
    m.net_frames_sent.add(1);
    m.net_bytes_out.add(probe.size());
    return true;
  }

  void writer_loop() {
    for (;;) {
      std::vector<std::uint8_t> frame;
      bool idle = false;
      {
        std::unique_lock lock(queue_mutex_);
        const auto ready = [&] { return !queue_.empty() || queue_closed_; };
        if (keepalive_enabled()) {
          idle = !queue_cv_.wait_for(lock, idle_wait(), ready);
        } else {
          queue_cv_.wait(lock, ready);
        }
        if (!idle) {
          if (queue_.empty()) break;  // closed and drained
          frame = std::move(queue_.front());
          queue_.pop_front();
        }
      }
      if (idle) {
        if (!keepalive_tick()) break;
        continue;
      }
      if (!conn_->write_all(frame)) {
        // Peer is gone: drop the rest and wake the reader out of its read.
        abort_connection();
        break;
      }
      server_.stats_.frames_sent.fetch_add(1);
      auto& m = obs::metrics();
      m.net_frames_sent.add(1);
      m.net_bytes_out.add(frame.size());
    }
    // Everything queued before close_queue() has been flushed (or the peer
    // vanished): end our write side so the client sees EOF after the tail.
    conn_->shutdown_write();
    writer_done_.store(true);
  }

  Server& server_;
  std::unique_ptr<Connection> conn_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::vector<std::uint8_t>> queue_;
  bool queue_closed_ = false;

  std::thread reader_;
  std::thread writer_;
  std::atomic<bool> reader_done_{false};
  std::atomic<bool> writer_done_{false};

  // Reader-thread state (no locking needed: only the reader touches these).
  const bool reject_;
  bool hello_done_ = false;
  std::uint64_t features_ = 0;  ///< Granted kFeature* bits (0 = legacy peer).
  std::uint64_t next_subscription_id_ = 1;
  std::unordered_map<std::uint64_t, api::SubscriptionId> subscriptions_;
  double rate_tokens_ = 0;
  std::chrono::steady_clock::time_point rate_last_ = std::chrono::steady_clock::now();

  // Writer-thread state.
  bool ping_outstanding_ = false;
  std::uint64_t ping_sent_ms_ = 0;
  std::uint64_t ping_nonce_ = 0;

  // Crosses reader -> writer.
  std::atomic<bool> keepalive_negotiated_{false};
  std::atomic<std::uint64_t> last_rx_ms_{0};
};

// ----------------------------------------------------------------- Server --

Server::Server(api::Service& service, std::shared_ptr<Listener> listener,
               ServerConfig config)
    : service_(service), listener_(std::move(listener)), config_(std::move(config)) {
  conns_collector_ = obs::Registry::global().add_collector(
      "bgpcu_net_open_connections", "Connections not yet torn down", {}, [this] {
        // No reap here: a scrape must never join connection threads.
        const std::lock_guard lock(conns_mutex_);
        std::size_t live = 0;
        for (const auto& handler : conns_) {
          if (!handler->done()) ++live;
        }
        return static_cast<double>(live);
      });
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    std::unique_ptr<Connection> conn;
    try {
      conn = listener_->accept();
    } catch (const TransportError&) {
      // Hard accept failures (fd exhaustion under load, transient kernel
      // errors) must not take the daemon down; back off and keep serving
      // the connections that exist.
      if (stopping_.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (!conn) break;
    reap_finished();
    if (stopping_.load()) break;
    std::size_t live = 0;
    {
      const std::lock_guard lock(conns_mutex_);
      live = conns_.size();
    }
    const bool reject = live >= config_.max_connections;
    if (reject) {
      stats_.connections_rejected.fetch_add(1);
      obs::metrics().net_connections_rejected.add(1);
      // Graceful rejection (read the hello, answer kServerBusy) costs a
      // handler and two threads for up to hello_timeout_ms. Under a
      // connection flood that would unbound thread creation, so past a
      // small overflow margin the rejection turns abrupt: best-effort
      // error write, immediate close, no threads.
      if (live >= config_.max_connections + kGracefulRejectSlots) {
        (void)conn->write_all(api::encode_error(
            {0, api::ErrorCode::kServerBusy, "connection limit reached"}));
        conn->shutdown_write();
        conn->close();
        continue;
      }
    } else {
      stats_.connections_accepted.fetch_add(1);
      obs::metrics().net_connections_accepted.add(1);
    }
    // Rejected connections (within the margin) run through a normal handler
    // too — its reader answers the first frame with kServerBusy and tears
    // down — so the error is flushed and joined like any other connection.
    auto handler = std::make_shared<ConnHandler>(*this, std::move(conn), reject);
    {
      const std::lock_guard lock(conns_mutex_);
      conns_.push_back(handler);
    }
    handler->start();
  }
}

void Server::reap_finished() {
  std::vector<std::shared_ptr<ConnHandler>> finished;
  {
    const std::lock_guard lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done()) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& handler : finished) handler->join();
}

void Server::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<ConnHandler>> conns;
  {
    const std::lock_guard lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (const auto& handler : conns) handler->abort_connection();
  for (const auto& handler : conns) handler->join();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = stats_.connections_accepted.load();
  out.connections_rejected = stats_.connections_rejected.load();
  out.auth_failures = stats_.auth_failures.load();
  out.frames_received = stats_.frames_received.load();
  out.frames_sent = stats_.frames_sent.load();
  out.protocol_errors = stats_.protocol_errors.load();
  out.slow_disconnects = stats_.slow_disconnects.load();
  out.pings_received = stats_.pings_received.load();
  out.keepalive_probes = stats_.keepalive_probes.load();
  out.keepalive_disconnects = stats_.keepalive_disconnects.load();
  out.requests_shed = stats_.requests_shed.load();
  out.busy_rejections = stats_.busy_rejections.load();
  return out;
}

std::size_t Server::connection_count() {
  // Doubles as a reap point: the accept loop only reaps when a new
  // connection arrives, so without this a quiet listener would keep
  // finished handlers (and their exited-but-unjoined threads) around
  // indefinitely. The daemon polls this every epoch.
  reap_finished();
  const std::lock_guard lock(conns_mutex_);
  std::size_t live = 0;
  for (const auto& handler : conns_) {
    if (!handler->done()) ++live;
  }
  return live;
}

}  // namespace bgpcu::net
