#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/wire.h"
#include "net/framer.h"
#include "obs/trace.h"
#include "obs/wellknown.h"

namespace bgpcu::net {

namespace {

/// How many over-limit connections may hold a graceful-rejection handler
/// (bounded by hello_timeout_ms) at once; everything past this is closed
/// abruptly so a connection flood cannot scale per-connection state.
constexpr std::size_t kGracefulRejectSlots = 8;

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One queued outbound frame: an owned head (always the complete frame for
/// responses/errors/acks; just the per-subscription prefix for events)
/// optionally followed by a shared, immutable broadcast tail. head ∥ tail
/// is exactly one wire frame.
struct OutFrame {
  std::vector<std::uint8_t> head;
  api::EncodedEventPtr tail;

  [[nodiscard]] std::size_t size() const noexcept {
    return head.size() + (tail ? tail->size() : 0);
  }
};

}  // namespace

// ------------------------------------------------------------ ConnHandler --

/// Shared protocol machinery for one live connection: handshake, dispatch,
/// subscriptions, admission control. Subclasses supply the IO model — how
/// frames are queued out (enqueue) and what clearing the hello deadline
/// means (on_handshake_complete). Held by shared_ptr from the server and,
/// weakly, from subscription callbacks living inside the Service.
class Server::ConnHandler : public std::enable_shared_from_this<Server::ConnHandler> {
 public:
  /// `reject` marks an over-limit connection: its first frame is answered
  /// with kServerBusy (or structured kBusy) and the connection torn down.
  /// Rejecting through the normal handler (rather than write-and-close in
  /// the accept loop) matters on real TCP: closing with the client's unread
  /// hello still buffered raises RST, which can discard the queued error.
  ConnHandler(Server& server, std::unique_ptr<Connection> conn, bool reject)
      : server_(server),
        conn_(std::move(conn)),
        reject_(reject),
        rate_tokens_(static_cast<double>(server.config_.request_burst)) {}

  virtual ~ConnHandler() = default;

  virtual void start() = 0;
  /// Hard teardown from outside (server stop or queue overflow): drop
  /// pending output and unblock everything. Does not join.
  virtual void abort_connection() = 0;
  [[nodiscard]] virtual bool done() const noexcept = 0;
  virtual void join() {}

  /// Unsubscribes everything this connection registered with the service.
  /// Idempotent; must run before the connection's output drains out so the
  /// service stops delivering into it.
  void release_subscriptions() {
    std::unordered_map<std::uint64_t, api::SubscriptionId> subs;
    {
      const std::lock_guard lock(subs_mutex_);
      if (subs_released_) return;
      subs_released_ = true;
      subs.swap(subscriptions_);
    }
    for (const auto& [local_id, service_id] : subs) {
      (void)server_.service_.unsubscribe(service_id);
    }
  }

 protected:
  /// Queues one outbound frame. Never blocks: an overflowing queue means a
  /// slow consumer, which is aborted rather than waited for. Safe from any
  /// thread, including Service publish callbacks.
  virtual void enqueue(OutFrame frame) = 0;
  /// The handshake landed: lift the first-frame deadline.
  virtual void on_handshake_complete() = 0;

  void enqueue_frame(std::vector<std::uint8_t> frame) {
    enqueue({std::move(frame), nullptr});
  }

  /// Queues one event frame: tiny owned prefix + shared broadcast payload.
  void enqueue_event(std::uint64_t local_id, const api::EncodedEventPtr& payload) {
    enqueue({api::encode_event_prefix(local_id, payload->size()), payload});
  }

  void send_error(std::uint64_t request_id, api::ErrorCode code,
                  const std::string& message) {
    // protocol_errors counts invalid client *input*; auth failures, busy
    // rejections, and internal failures have their own accounting.
    if (code == api::ErrorCode::kBadRequest ||
        code == api::ErrorCode::kUnknownSubscription) {
      server_.stats_.protocol_errors.fetch_add(1);
      obs::metrics().net_protocol_errors.add(1);
    }
    enqueue_frame(api::encode_error({request_id, code, message}));
  }

  /// Rejects the hello token / protocol version; returns true when the
  /// handshake may proceed. Shared by the legacy and feature handshakes.
  bool check_handshake(std::uint8_t protocol, const std::string& token) {
    // Exact match: an older client would misdecode responses whose
    // payloads grew since its version (e.g. the v2 stats fields), so the
    // handshake is where the mismatch must fail, loudly and by name.
    if (protocol != api::kProtocolVersion) {
      send_error(0, api::ErrorCode::kBadRequest,
                 "unsupported protocol version " + std::to_string(protocol));
      return false;
    }
    if (!server_.config_.auth_token.empty() && token != server_.config_.auth_token) {
      server_.stats_.auth_failures.fetch_add(1);
      obs::metrics().net_auth_failures.add(1);
      send_error(0, api::ErrorCode::kAuthFailed, "bad auth token");
      return false;
    }
    return true;
  }

  /// Token-bucket admission for kRequest/kSubscribe: refilled continuously
  /// at max_requests_per_sec up to request_burst. Dispatch-serialized.
  bool admit_request() {
    const auto rate = server_.config_.max_requests_per_sec;
    if (rate == 0) return true;
    const auto now = std::chrono::steady_clock::now();
    const auto elapsed = std::chrono::duration<double>(now - rate_last_).count();
    rate_last_ = now;
    rate_tokens_ = std::min<double>(static_cast<double>(server_.config_.request_burst),
                                    rate_tokens_ + elapsed * rate);
    if (rate_tokens_ >= 1.0) {
      rate_tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  /// Sheds one over-budget request before it reaches the service: kBusy with
  /// a retry-after hint for feature-negotiated peers, classic kServerBusy
  /// otherwise. Non-fatal — the connection (and its subscriptions) live on.
  void shed_request(std::uint64_t request_id) {
    server_.stats_.requests_shed.fetch_add(1);
    obs::metrics().net_requests_shed.add(1);
    const auto message = "request rate limit exceeded";
    if (features_ & api::kFeatureBusyRetry) {
      enqueue_frame(api::encode_busy(
          {request_id, server_.config_.busy_retry_after_ms, message}));
    } else {
      enqueue_frame(api::encode_error({request_id, api::ErrorCode::kServerBusy, message}));
    }
  }

  /// Dispatches one complete inbound frame. Returns false on a fatal
  /// protocol violation (an error frame has been queued; stop reading).
  /// Serialized per connection: reader thread (threaded path) or inbox
  /// drain (event path) — never concurrent with itself.
  bool handle_frame(const std::vector<std::uint8_t>& frame) {
    const auto type = api::peek_frame_type(frame);
    if (reject_) {
      // The client's opening frame has now been consumed, so the error can
      // reach it without a reset racing the close. A feature-negotiating
      // client gets the structured shed with its retry-after hint.
      if (type == api::FrameType::kHello2) {
        server_.stats_.busy_rejections.fetch_add(1);
        obs::metrics().net_busy_rejections.add(1);
        enqueue_frame(api::encode_busy(
            {0, server_.config_.busy_retry_after_ms, "connection limit reached"}));
        return false;
      }
      send_error(0, api::ErrorCode::kServerBusy, "connection limit reached");
      return false;
    }
    if (!hello_done_) {
      if (type == api::FrameType::kHello2) {
        const auto hello = api::decode_hello2(frame);
        if (!check_handshake(hello.protocol, hello.token)) return false;
        features_ = hello.features & api::kAllFeatures;
        hello_done_ = true;
        if (features_ & api::kFeatureKeepalive) keepalive_negotiated_.store(true);
        on_handshake_complete();
        api::Welcome2Frame welcome;
        welcome.protocol = api::kProtocolVersion;
        welcome.epoch = server_.service_.epoch();
        welcome.features = features_;
        welcome.replay_horizon = server_.service_.replay_horizon();
        enqueue_frame(api::encode_welcome2(welcome));
        return true;
      }
      if (type != api::FrameType::kHello) {
        send_error(0, api::ErrorCode::kBadRequest, "first frame must be hello");
        return false;
      }
      const auto hello = api::decode_hello(frame);
      if (!check_handshake(hello.protocol, hello.token)) return false;
      hello_done_ = true;
      on_handshake_complete();
      enqueue_frame(api::encode_welcome({api::kProtocolVersion, server_.service_.epoch()}));
      return true;
    }
    switch (type) {
      case api::FrameType::kPing: {
        // Keepalive probe from a feature-negotiated client; a legacy peer
        // sending one is as unexpected as any other reserved type.
        if (features_ == 0) return unexpected_type(type);
        const auto ping = api::decode_ping(frame);
        server_.stats_.pings_received.fetch_add(1);
        obs::metrics().net_pings_received.add(1);
        enqueue_frame(api::encode_ping(ping, api::FrameType::kPong));
        return true;
      }
      case api::FrameType::kPong: {
        if (features_ == 0) return unexpected_type(type);
        // The probe's job was done by the bytes arriving (last_rx_ms_ is
        // already fresh); decode only to validate.
        (void)api::decode_ping(frame, api::FrameType::kPong);
        return true;
      }
      case api::FrameType::kRequest: {
        auto& m = obs::metrics();
        obs::StageTimer decode_span(m.request_stage_decode_ns);
        const auto request = api::decode_request(frame);
        decode_span.stop();
        if (!admit_request()) {
          shed_request(request.request_id);
          return true;
        }
        try {
          obs::StageTimer dispatch_span(m.request_stage_dispatch_ns);
          auto response = server_.service_.query(request.request);
          dispatch_span.stop();
          obs::StageTimer encode_span(m.request_stage_encode_ns);
          auto encoded = api::encode_response({request.request_id, std::move(response)});
          encode_span.stop();
          obs::StageTimer enqueue_span(m.request_stage_enqueue_ns);
          enqueue_frame(std::move(encoded));
        } catch (const std::exception& e) {
          send_error(request.request_id, api::ErrorCode::kInternal, e.what());
        }
        return true;
      }
      case api::FrameType::kSubscribe: {
        const auto subscribe = api::decode_subscribe(frame);
        if (!admit_request()) {
          shed_request(subscribe.request_id);
          return true;
        }
        std::size_t open = 0;
        {
          const std::lock_guard lock(subs_mutex_);
          open = subscriptions_.size();
        }
        if (open >= server_.config_.max_subscriptions_per_connection) {
          send_error(subscribe.request_id, api::ErrorCode::kBadRequest,
                     "subscription limit (" +
                         std::to_string(server_.config_.max_subscriptions_per_connection) +
                         ") reached on this connection");
          return true;  // non-fatal: existing subscriptions keep streaming
        }
        const auto local_id = next_subscription_id_++;
        // Register with the service *before* acking: once the client sees
        // the ack, a publish on any thread is guaranteed to reach it.
        // Replayed events are therefore enqueued ahead of the ack — clients
        // buffer events at any time, so that ordering is fine.
        std::weak_ptr<ConnHandler> weak = weak_from_this();
        // Resume-negotiated peers learn atomically with the replay whether
        // the event log still covered their replay_from epoch; a false flag
        // tells the client to re-sync from a snapshot instead of trusting
        // the (lossy) replayed tail.
        bool replay_complete = true;
        const bool report_coverage = (features_ & api::kFeatureResume) != 0;
        // The encoded flavor: publish() serializes the filtered delta once
        // per distinct filter and every matching connection shares the
        // buffer; only the per-subscription frame prefix is owned here.
        const auto service_id = server_.service_.subscribe_encoded(
            subscribe.filter,
            [weak, local_id](stream::Epoch, const api::EncodedEventPtr& payload) {
              if (const auto self = weak.lock()) {
                self->enqueue_event(local_id, payload);
              }
            },
            subscribe.replay_from, report_coverage ? &replay_complete : nullptr);
        bool released = false;
        {
          const std::lock_guard lock(subs_mutex_);
          released = subs_released_;
          if (!released) subscriptions_.emplace(local_id, service_id);
        }
        if (released) {
          // Teardown raced the registration: the connection is going away,
          // so take the subscription right back out of the service.
          (void)server_.service_.unsubscribe(service_id);
          return true;
        }
        api::SubscribedFrame ack;
        ack.request_id = subscribe.request_id;
        ack.subscription_id = local_id;
        if (report_coverage) ack.replay_complete = replay_complete;
        enqueue_frame(api::encode_subscribed(ack));
        return true;
      }
      case api::FrameType::kUnsubscribe: {
        const auto unsubscribe = api::decode_unsubscribe(frame);
        std::optional<api::SubscriptionId> service_id;
        {
          const std::lock_guard lock(subs_mutex_);
          const auto it = subscriptions_.find(unsubscribe.subscription_id);
          if (it != subscriptions_.end()) {
            service_id = it->second;
            subscriptions_.erase(it);
          }
        }
        if (!service_id) {
          send_error(unsubscribe.request_id, api::ErrorCode::kUnknownSubscription,
                     "unknown subscription " + std::to_string(unsubscribe.subscription_id));
          return true;  // non-fatal: the client may have raced a disconnect
        }
        (void)server_.service_.unsubscribe(*service_id);
        api::SubscribedFrame ack;
        ack.request_id = unsubscribe.request_id;
        ack.subscription_id = unsubscribe.subscription_id;
        enqueue_frame(api::encode_subscribed(ack, api::FrameType::kUnsubscribed));
        return true;
      }
      default:
        return unexpected_type(type);
    }
  }

  bool unexpected_type(api::FrameType type) {
    send_error(0, api::ErrorCode::kBadRequest,
               "unexpected frame type " +
                   std::to_string(static_cast<int>(type)) + " from client");
    return false;
  }

  [[nodiscard]] bool keepalive_enabled() const {
    return keepalive_negotiated_.load() && server_.config_.keepalive_interval_ms > 0;
  }

  Server& server_;
  std::unique_ptr<Connection> conn_;
  const bool reject_;

  // Dispatch-serialized state (reader thread / inbox drain — never
  // concurrent with itself).
  bool hello_done_ = false;
  std::uint64_t features_ = 0;  ///< Granted kFeature* bits (0 = legacy peer).
  std::uint64_t next_subscription_id_ = 1;
  double rate_tokens_ = 0;
  std::chrono::steady_clock::time_point rate_last_ = std::chrono::steady_clock::now();

  /// Guards the subscription table against teardown racing registration.
  std::mutex subs_mutex_;
  std::unordered_map<std::uint64_t, api::SubscriptionId> subscriptions_;
  bool subs_released_ = false;

  // Crosses dispatch -> keepalive prober.
  std::atomic<bool> keepalive_negotiated_{false};
  std::atomic<std::uint64_t> last_rx_ms_{0};
};

// ---------------------------------------------------- ThreadedConnHandler --

/// Legacy model: one reader thread (frames in, dispatch) + one writer
/// thread (bounded queue out) per connection. Used for every connection
/// under ServeMode::kThreadPerConnection and for transports that cannot be
/// polled (fault-injection wrappers report a non-pollable PollInfo).
class Server::ThreadedConnHandler : public Server::ConnHandler {
 public:
  ThreadedConnHandler(Server& server, std::unique_ptr<Connection> conn, bool reject)
      : ConnHandler(server, std::move(conn), reject) {}

  void start() override {
    auto self = std::static_pointer_cast<ThreadedConnHandler>(shared_from_this());
    reader_ = std::thread([self] { self->reader_loop(); });
    writer_ = std::thread([self] { self->writer_loop(); });
  }

  void abort_connection() override {
    {
      const std::lock_guard lock(queue_mutex_);
      queue_closed_ = true;
      queue_.clear();
      queue_bytes_ = 0;
    }
    queue_cv_.notify_all();
    conn_->close();
  }

  void join() override {
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

  [[nodiscard]] bool done() const noexcept override {
    return reader_done_.load() && writer_done_.load();
  }

 protected:
  void enqueue(OutFrame frame) override {
    bool overflow = false;
    {
      const std::lock_guard lock(queue_mutex_);
      if (queue_closed_) return;
      // Both bounds hold: the deprecated frame count and the byte cap.
      // Bytes are checked against what is *already* queued, so one frame
      // larger than the limit still goes out on an under-limit queue.
      if (queue_.size() >= server_.config_.write_queue_limit ||
          queue_bytes_ >= server_.config_.write_queue_bytes_limit) {
        overflow = true;
        queue_closed_ = true;
        queue_.clear();
        queue_bytes_ = 0;
      } else {
        queue_bytes_ += frame.size();
        queue_.push_back(std::move(frame));
        obs::metrics().net_write_queue_hwm.max_of(
            static_cast<std::int64_t>(queue_.size()));
      }
    }
    queue_cv_.notify_one();
    if (overflow) {
      server_.stats_.slow_disconnects.fetch_add(1);
      obs::metrics().net_slow_disconnects.add(1);
      abort_connection();
    }
  }

  void on_handshake_complete() override {
    conn_->set_read_timeout(std::chrono::milliseconds::zero());
  }

 private:
  /// Signals the writer that no further frames are coming; it drains what is
  /// queued, then half-closes toward the client.
  void close_queue() {
    {
      const std::lock_guard lock(queue_mutex_);
      queue_closed_ = true;
    }
    queue_cv_.notify_all();
  }

  void reader_loop() {
    FrameBuffer frames(server_.config_.max_request_payload);
    std::vector<std::uint8_t> chunk(16384);
    // The first frame runs against a deadline (cleared once the handshake
    // lands): a connect that never speaks cannot hold this slot forever.
    if (server_.config_.hello_timeout_ms > 0) {
      conn_->set_read_timeout(std::chrono::milliseconds(server_.config_.hello_timeout_ms));
    }
    bool fatal = false;
    while (!fatal) {
      std::size_t n = 0;
      try {
        n = conn_->read_some(chunk);
      } catch (const TransportError&) {
        break;
      }
      if (n == 0) break;  // EOF / peer half-closed: flush and finish
      last_rx_ms_.store(steady_now_ms());
      obs::metrics().net_bytes_in.add(n);
      try {
        frames.append(std::span(chunk.data(), n));
        for (auto frame = frames.extract(); !frame.empty(); frame = frames.extract()) {
          server_.stats_.frames_received.fetch_add(1);
          obs::metrics().net_frames_received.add(1);
          if (!handle_frame(frame)) {
            fatal = true;
            break;
          }
        }
      } catch (const api::WireFormatError& e) {
        send_error(0, api::ErrorCode::kBadRequest, e.what());
        fatal = true;
      }
    }
    // Teardown: the service must stop delivering into this connection
    // before the writer drains out.
    release_subscriptions();
    close_queue();
    reader_done_.store(true);
  }

  /// How long the writer may sit idle before the next keepalive action:
  /// the dead-peer deadline while a probe is outstanding, else the probe
  /// cadence. Writer-thread only.
  [[nodiscard]] std::chrono::milliseconds idle_wait() const {
    return std::chrono::milliseconds(ping_outstanding_
                                         ? server_.config_.keepalive_timeout_ms
                                         : server_.config_.keepalive_interval_ms);
  }

  /// Runs on the writer thread after an idle keepalive interval. Returns
  /// false once the peer is declared dead (connection aborted).
  bool keepalive_tick() {
    const auto now = steady_now_ms();
    const auto last_rx = last_rx_ms_.load();
    if (ping_outstanding_) {
      if (last_rx >= ping_sent_ms_) {
        // Anything inbound since the probe proves the peer is alive.
        ping_outstanding_ = false;
        return true;
      }
      if (now - ping_sent_ms_ >= server_.config_.keepalive_timeout_ms) {
        server_.stats_.keepalive_disconnects.fetch_add(1);
        obs::metrics().net_keepalive_disconnects.add(1);
        abort_connection();
        return false;
      }
      return true;
    }
    if (now - last_rx < server_.config_.keepalive_interval_ms) return true;
    // We *are* the writer and the queue is idle, so the probe is written
    // directly — it cannot deadlock with the queue, and a closed queue
    // cannot swallow it.
    ping_outstanding_ = true;
    ping_sent_ms_ = now;
    server_.stats_.keepalive_probes.fetch_add(1);
    obs::metrics().net_keepalive_probes.add(1);
    const auto probe = api::encode_ping({++ping_nonce_});
    if (!conn_->write_all(probe)) {
      abort_connection();
      return false;
    }
    server_.stats_.frames_sent.fetch_add(1);
    auto& m = obs::metrics();
    m.net_frames_sent.add(1);
    m.net_bytes_out.add(probe.size());
    return true;
  }

  void writer_loop() {
    for (;;) {
      OutFrame frame;
      bool idle = false;
      {
        std::unique_lock lock(queue_mutex_);
        const auto ready = [&] { return !queue_.empty() || queue_closed_; };
        if (keepalive_enabled()) {
          idle = !queue_cv_.wait_for(lock, idle_wait(), ready);
        } else {
          queue_cv_.wait(lock, ready);
        }
        if (!idle) {
          if (queue_.empty()) break;  // closed and drained
          frame = std::move(queue_.front());
          queue_.pop_front();
          queue_bytes_ -= frame.size();
        }
      }
      if (idle) {
        if (!keepalive_tick()) break;
        continue;
      }
      if (!conn_->write_all(frame.head) ||
          (frame.tail && !conn_->write_all(*frame.tail))) {
        // Peer is gone: drop the rest and wake the reader out of its read.
        abort_connection();
        break;
      }
      server_.stats_.frames_sent.fetch_add(1);
      auto& m = obs::metrics();
      m.net_frames_sent.add(1);
      m.net_bytes_out.add(frame.size());
    }
    // Everything queued before close_queue() has been flushed (or the peer
    // vanished): end our write side so the client sees EOF after the tail.
    conn_->shutdown_write();
    writer_done_.store(true);
  }

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<OutFrame> queue_;
  std::size_t queue_bytes_ = 0;
  bool queue_closed_ = false;

  std::thread reader_;
  std::thread writer_;
  std::atomic<bool> reader_done_{false};
  std::atomic<bool> writer_done_{false};

  // Writer-thread state.
  bool ping_outstanding_ = false;
  std::uint64_t ping_sent_ms_ = 0;
  std::uint64_t ping_nonce_ = 0;
};

// -------------------------------------------------------------- EventConn --

/// Poller-driven connection state. All socket IO happens on the owning
/// IoLoop's thread; decoded frames are dispatched, in order, by at most one
/// worker at a time (the inbox + worker_scheduled_ flag serialize it).
/// Members are grouped by owner; cross-thread handoffs go through the two
/// mutexes and the atomics. Fields are public because the sibling IoLoop
/// (not a friend under nested-class rules) drives this object — both
/// classes are local to this translation unit.
class Server::EventConn : public Server::ConnHandler {
 public:
  EventConn(Server& server, std::unique_ptr<Connection> conn, bool reject,
            PollInfo pi, std::uint64_t token_base, IoLoop* loop)
      : ConnHandler(server, std::move(conn), reject),
        pi_(pi),
        token_base_(token_base),
        loop_(loop),
        frames_(server.config_.max_request_payload),
        read_chunk_(16384) {}

  void start() override {}  // adoption into the loop is the start
  void abort_connection() override;
  [[nodiscard]] bool done() const noexcept override {
    return completed_.load() || aborted_.load();
  }

  [[nodiscard]] std::shared_ptr<EventConn> self() {
    return std::static_pointer_cast<EventConn>(shared_from_this());
  }

  void clear_flush_pending() { flush_pending_.store(false); }

  /// Loop-thread, once: stamps the hello-deadline and keepalive baselines.
  void mark_adopted(std::uint64_t now) {
    adopt_ms_ = now;
    last_rx_ms_.store(now);
  }

  // --- IO-loop-thread entry points -----------------------------------
  void handle_readable(IoLoop& loop);
  void flush(IoLoop& loop);
  void update_interest(IoLoop& loop);
  /// Next steady-ms instant a deadline fires (0 = none): the hello
  /// deadline before the handshake, the keepalive cadence after.
  [[nodiscard]] std::uint64_t next_deadline() const;
  void on_deadline(IoLoop& loop, std::uint64_t now);

  // --- worker entry point --------------------------------------------
  /// Drains queued inbound frames through handle_frame. At most one worker
  /// runs this per connection at a time; it re-runs until the inbox is
  /// empty, then finalizes teardown exactly once when the connection is
  /// over (EOF, fatal protocol error, or abort).
  void drain_inbox();

 protected:
  void enqueue(OutFrame frame) override;
  void on_handshake_complete() override { hello_passed_.store(true); }

 public:
  /// One inbox entry: a complete frame, or the framing error that ended
  /// the stream (dispatched in order so everything decoded before the
  /// error is still answered first).
  struct InItem {
    std::vector<std::uint8_t> frame;
    bool framing_error = false;
    std::string error;
  };

  const PollInfo pi_;
  const std::uint64_t token_base_;  ///< Poller token; bit 0 = write-signal fd.
  IoLoop* const loop_;

  // IO-loop-thread state.
  FrameBuffer frames_;
  std::vector<std::uint8_t> read_chunk_;
  bool read_done_ = false;
  bool want_write_ = false;  ///< A partial frame is in flight.
  std::optional<OutFrame> inflight_;
  std::size_t inflight_off_ = 0;
  bool ping_outstanding_ = false;
  std::uint64_t ping_sent_ms_ = 0;
  std::uint64_t ping_nonce_ = 0;
  std::uint64_t adopt_ms_ = 0;  ///< Set once at adoption (hello deadline base).
  bool retired_ = false;        ///< Removed from the loop's table.
  // Interests actually registered with the poller, so the flush-heavy
  // steady state (interest unchanged) costs no epoll_ctl round-trips.
  bool reg_valid_ = false;
  bool reg_read_ = false;
  bool reg_write_ = false;

  // Inbound handoff: loop thread fills, one worker drains.
  std::mutex in_mutex_;
  std::deque<InItem> inbox_;
  bool worker_scheduled_ = false;
  bool eof_ = false;
  bool finalized_ = false;

  // Outbound queue: any thread fills (publish callbacks), loop flushes.
  std::mutex out_mutex_;
  std::deque<OutFrame> outq_;
  std::size_t out_bytes_ = 0;
  bool out_closed_ = false;
  bool close_after_flush_ = false;

  bool fatal_ = false;  ///< Worker-serialized (protocol violation seen).

  std::atomic<bool> hello_passed_{false};
  std::atomic<bool> stop_reading_{false};
  std::atomic<bool> flush_pending_{false};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> completed_{false};

 private:
  void keepalive_check(std::uint64_t now);
  /// Runs once, on the worker, when the connection is over: stops reads,
  /// releases subscriptions, and asks the loop to drain-then-half-close.
  void finalize_teardown();
};

// ----------------------------------------------------------------- IoLoop --

/// One poller and the thread that runs it. Connections are handed in (and
/// flush requests delivered) through mailboxes + wake() — the only
/// cross-thread surface; everything else (the connection table, interest
/// updates, deadline scans) is loop-thread-only.
class Server::IoLoop {
 public:
  IoLoop(Server& server, PollerBackend backend)
      : server_(server), poller_(Poller::create(backend)) {}

  ~IoLoop() {
    stop();
    join();
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    stopping_.store(true);
    poller_->wake();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Accept-thread handoff. live_ bumps immediately so the accept loop's
  /// admission census counts connections still sitting in the mailbox.
  void adopt(std::shared_ptr<EventConn> conn) {
    bool need_wake = false;
    {
      const std::lock_guard lock(mail_mutex_);
      adopt_mail_.push_back(std::move(conn));
      need_wake = sleeping_;
    }
    live_.fetch_add(1);
    if (need_wake) poller_->wake();
  }

  /// Any-thread request to drain `conn`'s output queue. Duplicate mail is
  /// harmless (flush is idempotent); flush_pending_ keeps the common case
  /// to one entry per wakeup. The wake fires only when the loop is parked
  /// in the poller: a publish burst fanning out to thousands of
  /// connections pays one eventfd write, not one per connection — the
  /// loop re-checks its mailboxes before every sleep.
  void request_flush(std::shared_ptr<EventConn> conn) {
    bool need_wake = false;
    {
      const std::lock_guard lock(mail_mutex_);
      flush_mail_.push_back(std::move(conn));
      need_wake = sleeping_;
    }
    if (need_wake) poller_->wake();
  }

  [[nodiscard]] std::size_t live() const { return live_.load(); }

  [[nodiscard]] Poller& poller() { return *poller_; }

  /// Post-join harvest of connections never retired (server stop): mailbox
  /// leftovers plus everything still in the table.
  std::vector<std::shared_ptr<EventConn>> drain_remaining() {
    std::vector<std::shared_ptr<EventConn>> out;
    {
      const std::lock_guard lock(mail_mutex_);
      for (auto& conn : adopt_mail_) out.push_back(std::move(conn));
      adopt_mail_.clear();
      flush_mail_.clear();
    }
    for (auto& [token, conn] : conns_) out.push_back(std::move(conn));
    conns_.clear();
    live_.store(0);
    return out;
  }

  /// Retires `conn` once it is done(): deregisters, drops it from the
  /// table, and makes sure the finalize worker runs even when the teardown
  /// came from abort_connection rather than the inbox drain (otherwise an
  /// aborted connection's subscriptions would leak until server stop).
  void maybe_retire(const std::shared_ptr<EventConn>& conn) {
    if (conn->retired_ || !conn->done()) return;
    conn->retired_ = true;
    poller_->remove(conn->pi_.read_fd);
    if (conn->pi_.write_fd != conn->pi_.read_fd) poller_->remove(conn->pi_.write_fd);
    conns_.erase(conn->token_base_);
    live_.fetch_sub(1);
    bool schedule = false;
    {
      const std::lock_guard lock(conn->in_mutex_);
      conn->eof_ = true;
      if (!conn->worker_scheduled_ && !conn->finalized_) {
        conn->worker_scheduled_ = true;
        schedule = true;
      }
    }
    if (schedule) server_.submit_worker(conn);
  }

 private:
  void run() {
    std::vector<PollerEvent> events;
    while (!stopping_.load()) {
      process_mail();
      if (stopping_.load()) break;
      {
        // Park only with empty mailboxes; a producer that pushed after
        // process_mail sees sleeping_ == false and skips the wake, so the
        // re-check here is what keeps that mail from waiting out a sleep.
        const std::lock_guard lock(mail_mutex_);
        if (!adopt_mail_.empty() || !flush_mail_.empty()) continue;
        sleeping_ = true;
      }
      const int timeout = compute_timeout_ms();
      try {
        (void)poller_->wait(events, timeout);
      } catch (const std::exception&) {
        break;  // poller broke underneath us; server stop cleans up
      }
      {
        const std::lock_guard lock(mail_mutex_);
        sleeping_ = false;
      }
      obs::metrics().net_fanout_wakeups.add(1);
      for (const auto& event : events) dispatch(event);
      check_deadlines();
    }
  }

  void process_mail() {
    std::vector<std::shared_ptr<EventConn>> adopts;
    std::vector<std::shared_ptr<EventConn>> flushes;
    {
      const std::lock_guard lock(mail_mutex_);
      adopts.swap(adopt_mail_);
      flushes.swap(flush_mail_);
    }
    for (auto& conn : adopts) do_adopt(std::move(conn));
    for (auto& conn : flushes) {
      conn->clear_flush_pending();
      conn->flush(*this);
      maybe_retire(conn);
    }
  }

  void do_adopt(std::shared_ptr<EventConn> conn) {
    conn->mark_adopted(steady_now_ms());
    conns_.emplace(conn->token_base_, conn);
    conn->update_interest(*this);
    maybe_retire(conn);  // may already have been aborted in the mailbox
  }

  void dispatch(const PollerEvent& event) {
    const auto it = conns_.find(event.token & ~std::uint64_t{1});
    if (it == conns_.end()) return;
    auto conn = it->second;  // keep alive across retire/erase
    if ((event.token & 1) == 0) {
      if (event.readable) conn->handle_readable(*this);
      if ((event.writable || event.hangup) && conn->want_write_) conn->flush(*this);
    } else if (conn->want_write_) {
      // The write-signal fd (loopback transports) reports writability as
      // readability of a side eventfd.
      conn->flush(*this);
    }
    maybe_retire(conn);
  }

  /// Poll timeout to the soonest connection deadline (-1 = block).
  [[nodiscard]] int compute_timeout_ms() const {
    const auto now = steady_now_ms();
    std::uint64_t min_due = 0;
    for (const auto& [token, conn] : conns_) {
      const auto due = conn->next_deadline();
      if (due == 0) continue;
      if (min_due == 0 || due < min_due) min_due = due;
    }
    if (min_due == 0) return -1;
    if (min_due <= now) return 0;
    return static_cast<int>(std::min<std::uint64_t>(min_due - now, 60000));
  }

  void check_deadlines() {
    const auto now = steady_now_ms();
    due_.clear();
    // Two passes: on_deadline can retire (mutating conns_ mid-iteration).
    for (const auto& [token, conn] : conns_) {
      const auto due = conn->next_deadline();
      if (due != 0 && due <= now) due_.push_back(conn);
    }
    for (const auto& conn : due_) {
      conn->on_deadline(*this, now);
      maybe_retire(conn);
    }
    due_.clear();
  }

  Server& server_;
  std::unique_ptr<Poller> poller_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> live_{0};

  std::mutex mail_mutex_;
  std::vector<std::shared_ptr<EventConn>> adopt_mail_;
  std::vector<std::shared_ptr<EventConn>> flush_mail_;
  bool sleeping_ = false;  ///< Loop parked in the poller (mail_mutex_).

  // Loop-thread-only.
  std::unordered_map<std::uint64_t, std::shared_ptr<EventConn>> conns_;
  std::vector<std::shared_ptr<EventConn>> due_;  ///< Reused scratch.
};

// --------------------------------------------------------------- WorkerPool --

/// Fixed pool dispatching per-connection inbox drains. stop() drains the
/// queue before exiting: queued work includes finalize teardowns, and
/// skipping those would leak service subscriptions.
class Server::WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads) : target_(threads) {}

  ~WorkerPool() { stop(); }

  void start() {
    for (std::size_t i = 0; i < target_; ++i) {
      threads_.emplace_back([this] { run(); });
    }
  }

  void submit(std::shared_ptr<EventConn> conn) {
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back(std::move(conn));
    }
    cv_.notify_one();
  }

  void stop() {
    {
      const std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

 private:
  void run() {
    for (;;) {
      std::shared_ptr<EventConn> conn;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and fully drained
        conn = std::move(queue_.front());
        queue_.pop_front();
      }
      conn->drain_inbox();
    }
  }

  const std::size_t target_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<EventConn>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

// ------------------------------------------------ EventConn definitions --
// Out-of-line because they drive the IoLoop, declared above them.

void Server::EventConn::enqueue(OutFrame frame) {
  bool overflow = false;
  {
    const std::lock_guard lock(out_mutex_);
    if (out_closed_) return;
    // Both bounds hold: the deprecated frame count and the byte cap. Bytes
    // are checked against what is *already* queued, so one frame larger
    // than the limit still goes out on an under-limit queue.
    if (outq_.size() >= server_.config_.write_queue_limit ||
        out_bytes_ >= server_.config_.write_queue_bytes_limit) {
      overflow = true;
      out_closed_ = true;
      outq_.clear();
      out_bytes_ = 0;
    } else {
      out_bytes_ += frame.size();
      outq_.push_back(std::move(frame));
      obs::metrics().net_write_queue_hwm.max_of(
          static_cast<std::int64_t>(outq_.size()));
    }
  }
  if (overflow) {
    server_.stats_.slow_disconnects.fetch_add(1);
    obs::metrics().net_slow_disconnects.add(1);
    abort_connection();
  } else if (!flush_pending_.exchange(true)) {
    loop_->request_flush(self());
  }
}

void Server::EventConn::abort_connection() {
  // Must never block on (or call into) the service: overflow aborts fire
  // from inside publish/replay with the facade mutex held. The loop's
  // maybe_retire schedules the finalize worker that releases subscriptions.
  {
    const std::lock_guard lock(out_mutex_);
    out_closed_ = true;
    outq_.clear();
    out_bytes_ = 0;
  }
  aborted_.store(true);
  conn_->close();
  {
    const std::lock_guard lock(in_mutex_);
    eof_ = true;
  }
  loop_->request_flush(self());  // nudge the loop so it retires us
}

void Server::EventConn::handle_readable(IoLoop& loop) {
  if (read_done_ || stop_reading_.load()) {
    update_interest(loop);
    return;
  }
  std::vector<InItem> items;
  bool eof = false;
  // Budgeted so one firehosing peer cannot monopolize the loop; the poller
  // is level-triggered, so leftover bytes re-report on the next wait.
  std::size_t budget = std::size_t{256} * 1024;
  while (budget > 0) {
    std::size_t n = 0;
    const auto cap = std::min(read_chunk_.size(), budget);
    const auto status = conn_->try_read(std::span(read_chunk_.data(), cap), n);
    if (status == IoStatus::kWouldBlock) break;
    if (status == IoStatus::kEof || n == 0) {
      eof = true;
      break;
    }
    last_rx_ms_.store(steady_now_ms());
    obs::metrics().net_bytes_in.add(n);
    budget -= n;
    try {
      frames_.append(std::span(read_chunk_.data(), n));
      for (auto frame = frames_.extract(); !frame.empty(); frame = frames_.extract()) {
        server_.stats_.frames_received.fetch_add(1);
        obs::metrics().net_frames_received.add(1);
        items.push_back({std::move(frame), false, {}});
      }
    } catch (const api::WireFormatError& e) {
      // Queued behind the frames decoded before it so they are still
      // answered; the stream itself is over.
      items.push_back({{}, true, e.what()});
      eof = true;
      break;
    }
  }
  if (eof) read_done_ = true;
  bool schedule = false;
  {
    const std::lock_guard lock(in_mutex_);
    for (auto& item : items) inbox_.push_back(std::move(item));
    if (eof) eof_ = true;
    if (!worker_scheduled_ && !finalized_ && (!inbox_.empty() || eof_)) {
      worker_scheduled_ = true;
      schedule = true;
    }
  }
  update_interest(loop);
  if (schedule) server_.submit_worker(self());
}

void Server::EventConn::drain_inbox() {
  for (;;) {
    std::deque<InItem> batch;
    {
      const std::lock_guard lock(in_mutex_);
      if (finalized_) {
        inbox_.clear();
        worker_scheduled_ = false;
        return;
      }
      batch.swap(inbox_);
    }
    for (auto& item : batch) {
      if (aborted_.load() || fatal_) break;
      if (item.framing_error) {
        send_error(0, api::ErrorCode::kBadRequest, item.error);
        fatal_ = true;
        break;
      }
      if (!handle_frame(item.frame)) {
        fatal_ = true;
        break;
      }
    }
    bool do_finalize = false;
    {
      const std::lock_guard lock(in_mutex_);
      if (fatal_) stop_reading_.store(true);
      if (!fatal_ && !aborted_.load() && !inbox_.empty()) continue;  // more arrived
      const bool over = eof_ || fatal_ || aborted_.load();
      if (over && !finalized_) {
        finalized_ = true;
        do_finalize = true;
      }
      worker_scheduled_ = false;
    }
    if (do_finalize) finalize_teardown();
    return;
  }
}

void Server::EventConn::finalize_teardown() {
  stop_reading_.store(true);
  // The service must stop delivering into this connection before the tail
  // of the output queue drains out.
  release_subscriptions();
  {
    const std::lock_guard lock(out_mutex_);
    close_after_flush_ = true;
  }
  loop_->request_flush(self());
}

void Server::EventConn::flush(IoLoop& loop) {
  if (completed_.load() || aborted_.load()) return;
  bool peer_gone = false;
  bool drained_to_close = false;
  std::size_t frames_flushed = 0;
  auto& m = obs::metrics();
  for (;;) {
    if (!inflight_) {
      const std::lock_guard lock(out_mutex_);
      if (out_closed_) break;
      if (outq_.empty()) {
        if (close_after_flush_) {
          out_closed_ = true;
          drained_to_close = true;
        }
        break;
      }
      inflight_ = std::move(outq_.front());
      outq_.pop_front();
      out_bytes_ -= inflight_->size();
      inflight_off_ = 0;
      if (inflight_->tail && inflight_->size() <= 2048) {
        // Small event frames (the fan-out steady state) flush as one
        // contiguous write: a ~100-byte memcpy here is cheaper than a
        // second transport round (lock + readiness signal, or syscall)
        // for the tail.
        auto& head = inflight_->head;
        head.reserve(inflight_->size());
        head.insert(head.end(), inflight_->tail->begin(), inflight_->tail->end());
        inflight_->tail = nullptr;
      }
    }
    const auto total = inflight_->size();
    std::span<const std::uint8_t> chunk;
    if (inflight_off_ < inflight_->head.size()) {
      chunk = std::span(inflight_->head).subspan(inflight_off_);
    } else {
      chunk = std::span(*inflight_->tail)
                  .subspan(inflight_off_ - inflight_->head.size());
    }
    std::size_t n = 0;
    const auto status = conn_->try_write(chunk, n);
    if (status == IoStatus::kWouldBlock) break;
    if (status == IoStatus::kEof) {
      peer_gone = true;
      break;
    }
    inflight_off_ += n;
    m.net_bytes_out.add(n);
    if (inflight_off_ == total) {
      server_.stats_.frames_sent.fetch_add(1);
      m.net_frames_sent.add(1);
      ++frames_flushed;
      inflight_.reset();
    }
  }
  if (frames_flushed > 1) m.net_fanout_coalesced_writes.add(1);
  if (peer_gone) {
    inflight_.reset();
    abort_connection();
    return;
  }
  want_write_ = inflight_.has_value();
  update_interest(loop);
  if (drained_to_close) {
    // Everything queued before the close has been flushed: end our write
    // side so the client sees EOF after the tail.
    conn_->shutdown_write();
    completed_.store(true);
  }
}

void Server::EventConn::update_interest(IoLoop& loop) {
  if (done()) return;  // retirement deregisters
  const bool want_read = !read_done_ && !stop_reading_.load();
  if (reg_valid_ && want_read == reg_read_ && want_write_ == reg_write_) return;
  reg_valid_ = true;
  reg_read_ = want_read;
  reg_write_ = want_write_;
  auto& poller = loop.poller();
  if (pi_.read_fd == pi_.write_fd) {
    // One duplex fd (TCP): a single registration carries both interests.
    if (!want_read && !want_write_) {
      poller.remove(pi_.read_fd);
    } else {
      poller.set(pi_.read_fd, token_base_, want_read, want_write_);
    }
  } else {
    // Split signal fds (loopback): each is an eventfd that becomes
    // READABLE when its direction is ready, so both register read-side.
    // set() with no interest deregisters.
    poller.set(pi_.read_fd, token_base_, want_read, false);
    poller.set(pi_.write_fd, token_base_ | 1, want_write_, false);
  }
}

std::uint64_t Server::EventConn::next_deadline() const {
  std::uint64_t due = 0;
  const bool hello = hello_passed_.load();
  if (!hello && server_.config_.hello_timeout_ms > 0 && !read_done_) {
    due = adopt_ms_ + server_.config_.hello_timeout_ms;
  }
  if (hello && keepalive_enabled()) {
    const std::uint64_t keepalive_due =
        ping_outstanding_ ? ping_sent_ms_ + server_.config_.keepalive_timeout_ms
                          : last_rx_ms_.load() + server_.config_.keepalive_interval_ms;
    due = due == 0 ? keepalive_due : std::min(due, keepalive_due);
  }
  return due;
}

void Server::EventConn::on_deadline(IoLoop& loop, std::uint64_t now) {
  if (!hello_passed_.load() && server_.config_.hello_timeout_ms > 0 && !read_done_ &&
      now >= adopt_ms_ + server_.config_.hello_timeout_ms) {
    // Hello deadline: same observable outcome as the threaded read
    // timeout — stop reading, flush anything queued, half-close.
    read_done_ = true;
    bool schedule = false;
    {
      const std::lock_guard lock(in_mutex_);
      eof_ = true;
      if (!worker_scheduled_ && !finalized_) {
        worker_scheduled_ = true;
        schedule = true;
      }
    }
    update_interest(loop);
    if (schedule) server_.submit_worker(self());
  }
  if (hello_passed_.load() && keepalive_enabled()) keepalive_check(now);
}

void Server::EventConn::keepalive_check(std::uint64_t now) {
  const auto last_rx = last_rx_ms_.load();
  if (ping_outstanding_) {
    if (last_rx >= ping_sent_ms_) {
      // Anything inbound since the probe proves the peer is alive.
      ping_outstanding_ = false;
      return;
    }
    if (now - ping_sent_ms_ >= server_.config_.keepalive_timeout_ms) {
      server_.stats_.keepalive_disconnects.fetch_add(1);
      obs::metrics().net_keepalive_disconnects.add(1);
      abort_connection();
    }
    return;
  }
  if (now - last_rx < server_.config_.keepalive_interval_ms) return;
  ping_outstanding_ = true;
  ping_sent_ms_ = now;
  server_.stats_.keepalive_probes.fetch_add(1);
  obs::metrics().net_keepalive_probes.add(1);
  // Unlike the threaded writer, the probe goes through the queue: the loop
  // owns the socket and a flush is already the only writer.
  enqueue({api::encode_ping({++ping_nonce_}), nullptr});
}

// ----------------------------------------------------------------- Server --

Server::Server(api::Service& service, std::shared_ptr<Listener> listener,
               ServerConfig config)
    : service_(service), listener_(std::move(listener)), config_(std::move(config)) {
  if (config_.mode == ServeMode::kEventLoop) {
    const auto loops = std::max<std::size_t>(1, config_.io_threads);
    loops_.reserve(loops);
    for (std::size_t i = 0; i < loops; ++i) {
      loops_.push_back(std::make_unique<IoLoop>(*this, config_.poller_backend));
    }
    if (config_.worker_threads > 0) {
      workers_ = std::make_unique<WorkerPool>(config_.worker_threads);
    }
  }
  conns_collector_ = obs::Registry::global().add_collector(
      "bgpcu_net_open_connections", "Connections not yet torn down", {}, [this] {
        // No reap here: a scrape must never join connection threads.
        std::size_t live = 0;
        {
          const std::lock_guard lock(conns_mutex_);
          for (const auto& handler : conns_) {
            if (!handler->done()) ++live;
          }
        }
        for (const auto& loop : loops_) live += loop->live();
        return static_cast<double>(live);
      });
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  if (workers_) workers_->start();
  for (auto& loop : loops_) loop->start();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    std::unique_ptr<Connection> conn;
    try {
      conn = listener_->accept();
    } catch (const TransportError&) {
      // Hard accept failures (fd exhaustion under load, transient kernel
      // errors) must not take the daemon down; back off and keep serving
      // the connections that exist.
      if (stopping_.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (!conn) break;
    reap_finished();
    if (stopping_.load()) break;
    std::size_t live = 0;
    {
      const std::lock_guard lock(conns_mutex_);
      live = conns_.size();
    }
    for (const auto& loop : loops_) live += loop->live();
    const bool reject = live >= config_.max_connections;
    if (reject) {
      stats_.connections_rejected.fetch_add(1);
      obs::metrics().net_connections_rejected.add(1);
      // Graceful rejection (read the hello, answer kServerBusy) costs live
      // connection state for up to hello_timeout_ms. Under a connection
      // flood that would grow without bound, so past a small overflow
      // margin the rejection turns abrupt: best-effort error write,
      // immediate close, no handler.
      if (live >= config_.max_connections + kGracefulRejectSlots) {
        (void)conn->write_all(api::encode_error(
            {0, api::ErrorCode::kServerBusy, "connection limit reached"}));
        conn->shutdown_write();
        conn->close();
        continue;
      }
    } else {
      stats_.connections_accepted.fetch_add(1);
      obs::metrics().net_connections_accepted.add(1);
    }
    // Rejected connections (within the margin) run through a normal handler
    // too — it answers the first frame with kServerBusy and tears down — so
    // the error is flushed and joined like any other connection.
    PollInfo pi;
    const bool use_event = config_.mode == ServeMode::kEventLoop && !loops_.empty() &&
                           (pi = conn->poll_info()).pollable();
    if (use_event) {
      auto& loop = *loops_[next_loop_++ % loops_.size()];
      const auto token_base = next_conn_id_.fetch_add(1) << 1;
      loop.adopt(std::make_shared<EventConn>(*this, std::move(conn), reject, pi,
                                             token_base, &loop));
    } else {
      // Non-pollable transport (or legacy mode): two threads, same protocol.
      auto handler = std::make_shared<ThreadedConnHandler>(*this, std::move(conn), reject);
      {
        const std::lock_guard lock(conns_mutex_);
        conns_.push_back(handler);
      }
      handler->start();
    }
  }
}

void Server::submit_worker(std::shared_ptr<EventConn> conn) {
  if (workers_) {
    workers_->submit(std::move(conn));
  } else {
    // worker_threads == 0: dispatch runs inline on whichever thread asked
    // (the IO loop, normally). Cheap, but a slow query stalls that loop.
    conn->drain_inbox();
  }
}

void Server::reap_finished() {
  std::vector<std::shared_ptr<ConnHandler>> finished;
  {
    const std::lock_guard lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done()) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& handler : finished) handler->join();
}

void Server::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<ConnHandler>> conns;
  {
    const std::lock_guard lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (const auto& handler : conns) handler->abort_connection();
  for (auto& loop : loops_) loop->stop();
  for (auto& loop : loops_) loop->join();
  // Workers drain before the leftover sweep: any queued finalize (which
  // releases subscriptions) runs to completion first, so the sweep's
  // release_subscriptions below is a no-op for those.
  if (workers_) workers_->stop();
  for (auto& loop : loops_) {
    for (const auto& conn : loop->drain_remaining()) {
      conn->abort_connection();  // loop is dead; the flush mail just sits
      conn->release_subscriptions();
    }
  }
  for (const auto& handler : conns) handler->join();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = stats_.connections_accepted.load();
  out.connections_rejected = stats_.connections_rejected.load();
  out.auth_failures = stats_.auth_failures.load();
  out.frames_received = stats_.frames_received.load();
  out.frames_sent = stats_.frames_sent.load();
  out.protocol_errors = stats_.protocol_errors.load();
  out.slow_disconnects = stats_.slow_disconnects.load();
  out.pings_received = stats_.pings_received.load();
  out.keepalive_probes = stats_.keepalive_probes.load();
  out.keepalive_disconnects = stats_.keepalive_disconnects.load();
  out.requests_shed = stats_.requests_shed.load();
  out.busy_rejections = stats_.busy_rejections.load();
  return out;
}

std::size_t Server::connection_count() {
  // Doubles as a reap point: the accept loop only reaps when a new
  // connection arrives, so without this a quiet listener would keep
  // finished threaded handlers (and their exited-but-unjoined threads)
  // around indefinitely. The daemon polls this every epoch.
  reap_finished();
  std::size_t live = 0;
  {
    const std::lock_guard lock(conns_mutex_);
    for (const auto& handler : conns_) {
      if (!handler->done()) ++live;
    }
  }
  for (const auto& loop : loops_) live += loop->live();
  return live;
}

}  // namespace bgpcu::net
