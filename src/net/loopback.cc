#include "net/loopback.h"

#include <algorithm>
#include <atomic>

namespace bgpcu::net {

LoopbackPipe::LoopbackPipe(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

std::size_t LoopbackPipe::read_some(std::span<std::uint8_t> out,
                                    std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  const auto ready = [&] { return !buffer_.empty() || write_closed_ || read_closed_; };
  if (timeout > std::chrono::milliseconds::zero()) {
    if (!readable_.wait_for(lock, timeout, ready)) return 0;  // deadline: EOF
  } else {
    readable_.wait(lock, ready);
  }
  if (read_closed_) return 0;
  if (buffer_.empty()) return 0;  // write_closed_ and drained: EOF
  const auto n = std::min(out.size(), buffer_.size());
  std::copy_n(buffer_.begin(), n, out.begin());
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  writable_.notify_all();
  return n;
}

bool LoopbackPipe::write_all(std::span<const std::uint8_t> data) {
  std::unique_lock lock(mutex_);
  std::size_t written = 0;
  while (written < data.size()) {
    writable_.wait(lock, [&] {
      return buffer_.size() < capacity_ || read_closed_ || write_closed_;
    });
    if (read_closed_ || write_closed_) return false;
    const auto room = capacity_ - buffer_.size();
    const auto n = std::min(room, data.size() - written);
    buffer_.insert(buffer_.end(), data.begin() + static_cast<std::ptrdiff_t>(written),
                   data.begin() + static_cast<std::ptrdiff_t>(written + n));
    written += n;
    readable_.notify_all();
  }
  return true;
}

void LoopbackPipe::close_write() {
  const std::lock_guard lock(mutex_);
  write_closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
}

void LoopbackPipe::close_read() {
  const std::lock_guard lock(mutex_);
  read_closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
}

namespace {

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackPipe> in, std::shared_ptr<LoopbackPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConnection() override { close(); }

  std::size_t read_some(std::span<std::uint8_t> out) override {
    return in_->read_some(out, std::chrono::milliseconds(timeout_ms_.load()));
  }

  bool write_all(std::span<const std::uint8_t> data) override { return out_->write_all(data); }

  void set_read_timeout(std::chrono::milliseconds timeout) override {
    timeout_ms_.store(timeout.count());
  }

  void shutdown_write() override { out_->close_write(); }

  void close() override {
    out_->close_write();
    in_->close_read();
  }

  [[nodiscard]] std::string peer_name() const override { return "loopback"; }

 private:
  std::shared_ptr<LoopbackPipe> in_;
  std::shared_ptr<LoopbackPipe> out_;
  std::atomic<long long> timeout_ms_{0};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>> make_loopback_pair(
    std::size_t capacity) {
  auto a_to_b = std::make_shared<LoopbackPipe>(capacity);
  auto b_to_a = std::make_shared<LoopbackPipe>(capacity);
  return {std::make_unique<LoopbackConnection>(b_to_a, a_to_b),
          std::make_unique<LoopbackConnection>(a_to_b, b_to_a)};
}

std::unique_ptr<Connection> LoopbackListener::connect() {
  auto [client, server] = make_loopback_pair(capacity_);
  {
    const std::lock_guard lock(mutex_);
    if (closed_) throw TransportError("loopback listener is closed");
    pending_.push_back(std::move(server));
  }
  pending_cv_.notify_one();
  return std::move(client);
}

std::unique_ptr<Connection> LoopbackListener::accept() {
  std::unique_lock lock(mutex_);
  pending_cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
  if (pending_.empty()) return nullptr;
  auto conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

void LoopbackListener::close() {
  {
    const std::lock_guard lock(mutex_);
    closed_ = true;
  }
  pending_cv_.notify_all();
}

}  // namespace bgpcu::net
