#include "net/loopback.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>

namespace bgpcu::net {

namespace {

void set_eventfd(int fd) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

void clear_eventfd(int fd) {
  std::uint64_t buf = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd, &buf, sizeof(buf));
}

}  // namespace

LoopbackPipe::LoopbackPipe(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

LoopbackPipe::~LoopbackPipe() {
  // Both connection ends hold the pipe via shared_ptr, so nobody can be
  // polling these fds once the destructor runs.
  if (read_efd_ >= 0) ::close(read_efd_);
  if (write_efd_ >= 0) ::close(write_efd_);
}

std::size_t LoopbackPipe::consume_locked(std::span<std::uint8_t> out) {
  const auto n = std::min(out.size(), buffered_locked());
  std::copy_n(buffer_.data() + head_, n, out.data());
  head_ += n;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else if (head_ >= 4096 && head_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return n;
}

void LoopbackPipe::update_signals_locked() {
  const bool want_read = buffered_locked() > 0 || write_closed_ || read_closed_;
  const bool want_write = buffered_locked() < capacity_ || read_closed_ || write_closed_;
  if (read_efd_ >= 0 && want_read != read_sig_) {
    want_read ? set_eventfd(read_efd_) : clear_eventfd(read_efd_);
    read_sig_ = want_read;
  }
  if (write_efd_ >= 0 && want_write != write_sig_) {
    want_write ? set_eventfd(write_efd_) : clear_eventfd(write_efd_);
    write_sig_ = want_write;
  }
}

int LoopbackPipe::read_ready_fd() {
  const std::lock_guard lock(mutex_);
  if (read_efd_ == -2) {
    read_efd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    update_signals_locked();
  }
  return read_efd_;
}

int LoopbackPipe::write_ready_fd() {
  const std::lock_guard lock(mutex_);
  if (write_efd_ == -2) {
    write_efd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    update_signals_locked();
  }
  return write_efd_;
}

std::size_t LoopbackPipe::read_some(std::span<std::uint8_t> out,
                                    std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  const auto ready = [&] { return buffered_locked() > 0 || write_closed_ || read_closed_; };
  if (timeout > std::chrono::milliseconds::zero()) {
    if (!readable_.wait_for(lock, timeout, ready)) return 0;  // deadline: EOF
  } else {
    readable_.wait(lock, ready);
  }
  if (read_closed_) return 0;
  if (buffered_locked() == 0) return 0;  // write_closed_ and drained: EOF
  const auto n = consume_locked(out);
  writable_.notify_all();
  update_signals_locked();
  return n;
}

bool LoopbackPipe::write_all(std::span<const std::uint8_t> data) {
  std::unique_lock lock(mutex_);
  std::size_t written = 0;
  while (written < data.size()) {
    writable_.wait(lock, [&] {
      return buffered_locked() < capacity_ || read_closed_ || write_closed_;
    });
    if (read_closed_ || write_closed_) return false;
    const auto room = capacity_ - buffered_locked();
    const auto n = std::min(room, data.size() - written);
    buffer_.insert(buffer_.end(), data.begin() + static_cast<std::ptrdiff_t>(written),
                   data.begin() + static_cast<std::ptrdiff_t>(written + n));
    written += n;
    readable_.notify_all();
    update_signals_locked();
  }
  return true;
}

std::size_t LoopbackPipe::try_read_some(std::span<std::uint8_t> out, bool& eof) {
  const std::lock_guard lock(mutex_);
  eof = false;
  if (read_closed_) {
    eof = true;
    return 0;
  }
  if (buffered_locked() == 0) {
    eof = write_closed_;
    return 0;
  }
  const auto n = consume_locked(out);
  writable_.notify_all();
  update_signals_locked();
  return n;
}

std::size_t LoopbackPipe::try_write_some(std::span<const std::uint8_t> data, bool& closed) {
  const std::lock_guard lock(mutex_);
  closed = false;
  if (read_closed_ || write_closed_) {
    closed = true;
    return 0;
  }
  if (buffered_locked() >= capacity_) return 0;
  const auto room = capacity_ - buffered_locked();
  const auto n = std::min(room, data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n));
  readable_.notify_all();
  update_signals_locked();
  return n;
}

void LoopbackPipe::close_write() {
  const std::lock_guard lock(mutex_);
  write_closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
  update_signals_locked();
}

void LoopbackPipe::close_read() {
  const std::lock_guard lock(mutex_);
  read_closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
  update_signals_locked();
}

namespace {

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackPipe> in, std::shared_ptr<LoopbackPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConnection() override { close(); }

  std::size_t read_some(std::span<std::uint8_t> out) override {
    return in_->read_some(out, std::chrono::milliseconds(timeout_ms_.load()));
  }

  bool write_all(std::span<const std::uint8_t> data) override { return out_->write_all(data); }

  void set_read_timeout(std::chrono::milliseconds timeout) override {
    timeout_ms_.store(timeout.count());
  }

  void shutdown_write() override { out_->close_write(); }

  void close() override {
    out_->close_write();
    in_->close_read();
  }

  [[nodiscard]] std::string peer_name() const override { return "loopback"; }

  [[nodiscard]] PollInfo poll_info() const override {
    // read_fd signals inbound data/EOF; write_fd is the *signal* eventfd
    // that turns readable when the outbound pipe has room (PollInfo
    // contract: distinct write_fd == readable-when-writable semantics).
    const PollInfo pi{in_->read_ready_fd(), out_->write_ready_fd()};
    if (!pi.pollable()) return {};
    return pi;
  }

  IoStatus try_read(std::span<std::uint8_t> out, std::size_t& n) override {
    bool eof = false;
    n = in_->try_read_some(out, eof);
    if (n > 0) return IoStatus::kOk;
    return eof ? IoStatus::kEof : IoStatus::kWouldBlock;
  }

  IoStatus try_write(std::span<const std::uint8_t> data, std::size_t& n) override {
    bool closed = false;
    n = out_->try_write_some(data, closed);
    if (closed) return IoStatus::kEof;
    return n > 0 ? IoStatus::kOk : IoStatus::kWouldBlock;
  }

 private:
  std::shared_ptr<LoopbackPipe> in_;
  std::shared_ptr<LoopbackPipe> out_;
  std::atomic<long long> timeout_ms_{0};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>> make_loopback_pair(
    std::size_t capacity) {
  auto a_to_b = std::make_shared<LoopbackPipe>(capacity);
  auto b_to_a = std::make_shared<LoopbackPipe>(capacity);
  return {std::make_unique<LoopbackConnection>(b_to_a, a_to_b),
          std::make_unique<LoopbackConnection>(a_to_b, b_to_a)};
}

std::unique_ptr<Connection> LoopbackListener::connect() {
  auto [client, server] = make_loopback_pair(capacity_);
  {
    const std::lock_guard lock(mutex_);
    if (closed_) throw TransportError("loopback listener is closed");
    pending_.push_back(std::move(server));
  }
  pending_cv_.notify_one();
  return std::move(client);
}

std::unique_ptr<Connection> LoopbackListener::accept() {
  std::unique_lock lock(mutex_);
  pending_cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
  if (pending_.empty()) return nullptr;
  auto conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

void LoopbackListener::close() {
  {
    const std::lock_guard lock(mutex_);
    closed_ = true;
  }
  pending_cv_.notify_all();
}

}  // namespace bgpcu::net
