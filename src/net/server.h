// The serving core behind bgpcu_serve: accepts Transport connections and
// speaks the frame protocol (docs/PROTOCOL.md) over each, translating
// kRequest frames into api::Service queries and kSubscribe frames into
// service subscriptions whose events stream back as kEvent frames.
//
// Concurrency model — the point of this class: every connection gets a
// reader thread (decode + dispatch) and a writer thread draining a bounded
// per-connection frame queue. Subscription callbacks from
// api::Service::publish() only *enqueue* (O(1), non-blocking), so one slow
// or stalled subscriber can never hold up publish(), ingest, or any other
// connection; a subscriber whose queue overflows is disconnected instead
// (counted in ServerStats::slow_disconnects). This closes the ROADMAP item
// about synchronous subscription dispatch.
#ifndef BGPCU_NET_SERVER_H
#define BGPCU_NET_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/service.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace bgpcu::net {

struct ServerConfig {
  /// Required token when non-empty: a kHello with a different token is
  /// rejected with ErrorCode::kAuthFailed and the connection is closed.
  std::string auth_token;
  /// Accepted connections beyond this are turned away with kServerBusy.
  std::size_t max_connections = 64;
  /// Per-frame payload cap on *client -> server* frames. Requests are tiny;
  /// a modest cap bounds what an abusive peer can make the server buffer.
  std::size_t max_request_payload = std::size_t{1} << 20;
  /// Per-connection write queue cap, in frames. Overflow means the consumer
  /// is too slow to keep up with its subscription feed: it is disconnected.
  std::size_t write_queue_limit = 256;
  /// Deadline for the client's first frame, in milliseconds (0 disables).
  /// Bounds how long an idle connect — including one awaiting its busy
  /// rejection — can pin a conns_ slot and its two threads.
  std::uint32_t hello_timeout_ms = 5000;
  /// Open subscriptions one connection may hold. Each subscription costs
  /// the Service a stored filter evaluated on every publish, so this is
  /// bounded for the same reason as the wire-level watchlist cap.
  std::size_t max_subscriptions_per_connection = 64;
  /// How long a keepalive-negotiated connection may stay silent before the
  /// server probes it with kPing, in milliseconds (0 disables probing).
  /// Probing runs on the connection's writer thread, so a dead peer is
  /// detected even when the server has nothing to send.
  std::uint32_t keepalive_interval_ms = 15000;
  /// After a probe, how long to wait for *any* inbound byte before declaring
  /// the peer dead and tearing the connection down.
  std::uint32_t keepalive_timeout_ms = 5000;
  /// Per-connection request/subscribe admission rate (token bucket refilled
  /// continuously, burst capacity `request_burst`). Over-budget requests are
  /// shed cheap-and-early — answered with kBusy (feature-negotiated peers)
  /// or kServerBusy *before* touching the service — instead of timing out
  /// deep in the dispatch queue. 0 = unlimited.
  std::uint32_t max_requests_per_sec = 0;
  std::uint32_t request_burst = 32;
  /// Retry-after hint carried in busy sheds to feature-negotiated clients.
  std::uint32_t busy_retry_after_ms = 1000;
};

/// Monotonic counters, readable at any time (values are snapshots).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< Turned away by max_connections.
  std::uint64_t auth_failures = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  /// kError frames sent for malformed or invalid client input (bad-request
  /// and unknown-subscription); auth failures and busy rejections are
  /// counted in their own fields only.
  std::uint64_t protocol_errors = 0;
  std::uint64_t slow_disconnects = 0;   ///< Write-queue overflows.
  std::uint64_t pings_received = 0;     ///< Client keepalive probes answered.
  std::uint64_t keepalive_probes = 0;   ///< Server-initiated kPing probes.
  std::uint64_t keepalive_disconnects = 0;  ///< Peers declared dead after a probe.
  std::uint64_t requests_shed = 0;      ///< Rate-limited requests answered busy.
  std::uint64_t busy_rejections = 0;    ///< Admission rejections sent as kBusy.
};

class Server {
 public:
  /// The service must outlive the server. The listener is shared so tests
  /// (and in-process clients) can keep a handle to connect() against.
  Server(api::Service& service, std::shared_ptr<Listener> listener,
         ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop. Call once.
  void start();

  /// Closes the listener and every live connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] ServerStats stats() const;

  /// Live (not yet torn down) connections. Also reaps finished handlers —
  /// poll it periodically on a long-lived server (bgpcu_serve does, every
  /// epoch) so joined threads don't wait for the next accept.
  [[nodiscard]] std::size_t connection_count();

 private:
  class ConnHandler;

  void accept_loop();
  void reap_finished();

  api::Service& service_;
  std::shared_ptr<Listener> listener_;
  ServerConfig config_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex conns_mutex_;
  std::vector<std::shared_ptr<ConnHandler>> conns_;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> auth_failures{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> slow_disconnects{0};
    std::atomic<std::uint64_t> pings_received{0};
    std::atomic<std::uint64_t> keepalive_probes{0};
    std::atomic<std::uint64_t> keepalive_disconnects{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> busy_rejections{0};
  };
  mutable AtomicStats stats_;
  /// Open-connection gauge, computed at scrape time. Counts without reaping
  /// (no thread joins on the scraping thread). Declared last so it
  /// unregisters before conns_ is torn down.
  obs::ScopedCollector conns_collector_;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_SERVER_H
