// The serving core behind bgpcu_serve: accepts Transport connections and
// speaks the frame protocol (docs/PROTOCOL.md) over each, translating
// kRequest frames into api::Service queries and kSubscribe frames into
// service subscriptions whose events stream back as kEvent frames.
//
// Concurrency model — the point of this class: connections are served by an
// event-driven readiness loop (ServeMode::kEventLoop, the default). A small
// set of IO threads each run a Poller over nonblocking connections, doing
// all reads and writes; decoded frames are dispatched per-connection (in
// order) on a fixed worker pool so a slow service query never stalls the IO
// loop. Published events are serialized once per epoch (per distinct
// filter) into a shared refcounted buffer that every matching subscriber's
// write queue references — fan-out costs one encode, not one per peer.
// Write queues are bounded in BYTES (write_queue_bytes_limit) and frames;
// a subscriber that overflows either bound is disconnected (counted in
// ServerStats::slow_disconnects) instead of waited for, so one stalled
// peer can never hold up publish(), ingest, or any other connection.
//
// Connections whose transport cannot be polled (Connection::poll_info
// reports non-pollable — e.g. fault-injection wrappers), and every
// connection under ServeMode::kThreadPerConnection, fall back to the
// legacy model: one reader thread + one writer thread per connection,
// draining the same bounded queue. Both paths share one protocol handler,
// so behavior is identical frame-for-frame.
#ifndef BGPCU_NET_SERVER_H
#define BGPCU_NET_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/service.h"
#include "net/poller.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace bgpcu::net {

/// How the server runs connections. kEventLoop is the production default;
/// kThreadPerConnection keeps the legacy two-threads-per-connection model
/// (used as the fan-out benchmark baseline, and implicitly for transports
/// that cannot be polled).
enum class ServeMode : std::uint8_t { kEventLoop, kThreadPerConnection };

struct ServerConfig {
  /// Required token when non-empty: a kHello with a different token is
  /// rejected with ErrorCode::kAuthFailed and the connection is closed.
  std::string auth_token;
  /// Accepted connections beyond this are turned away with kServerBusy.
  std::size_t max_connections = 64;
  /// Per-frame payload cap on *client -> server* frames. Requests are tiny;
  /// a modest cap bounds what an abusive peer can make the server buffer.
  std::size_t max_request_payload = std::size_t{1} << 20;
  /// DEPRECATED frame-count alias for the write-queue bound: kept because a
  /// frame count was the original knob, but a few multi-MB snapshot frames
  /// evade any count — write_queue_bytes_limit is the real backpressure
  /// bound. Both are enforced; overflow of either disconnects the peer.
  std::size_t write_queue_limit = 256;
  /// Per-connection write queue cap, in bytes. Overflow means the consumer
  /// is too slow to keep up: it is disconnected (slow_disconnects). The
  /// check is on bytes already queued, so one frame larger than the limit
  /// still goes out when the queue is under the bound.
  std::size_t write_queue_bytes_limit = std::size_t{32} << 20;
  /// Deadline for the client's first frame, in milliseconds (0 disables).
  /// Bounds how long an idle connect — including one awaiting its busy
  /// rejection — can pin a conns_ slot.
  std::uint32_t hello_timeout_ms = 5000;
  /// Open subscriptions one connection may hold. Each subscription costs
  /// the Service a stored filter evaluated on every publish, so this is
  /// bounded for the same reason as the wire-level watchlist cap.
  std::size_t max_subscriptions_per_connection = 64;
  /// How long a keepalive-negotiated connection may stay silent before the
  /// server probes it with kPing, in milliseconds (0 disables probing).
  /// A dead peer is detected even when the server has nothing to send.
  std::uint32_t keepalive_interval_ms = 15000;
  /// After a probe, how long to wait for *any* inbound byte before declaring
  /// the peer dead and tearing the connection down.
  std::uint32_t keepalive_timeout_ms = 5000;
  /// Per-connection request/subscribe admission rate (token bucket refilled
  /// continuously, burst capacity `request_burst`). Over-budget requests are
  /// shed cheap-and-early — answered with kBusy (feature-negotiated peers)
  /// or kServerBusy *before* touching the service — instead of timing out
  /// deep in the dispatch queue. 0 = unlimited.
  std::uint32_t max_requests_per_sec = 0;
  std::uint32_t request_burst = 32;
  /// Retry-after hint carried in busy sheds to feature-negotiated clients.
  std::uint32_t busy_retry_after_ms = 1000;
  /// Connection serving model (see ServeMode).
  ServeMode mode = ServeMode::kEventLoop;
  /// Event-loop threads (clamped to >= 1). Pollable connections are
  /// assigned round-robin at accept time.
  std::size_t io_threads = 1;
  /// Worker threads decoding/dispatching frames off the IO loops. 0 runs
  /// dispatch inline on the IO thread — cheapest, but a slow service query
  /// then stalls that loop's other connections.
  std::size_t worker_threads = 1;
  /// Readiness backend for the IO loops (and nothing else). Defaults to
  /// epoll, or poll(2) when BGPCU_NET_POLLER=poll is set — which is how CI
  /// runs the conformance suite against both backends.
  PollerBackend poller_backend = default_poller_backend();
};

/// Monotonic counters, readable at any time (values are snapshots).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< Turned away by max_connections.
  std::uint64_t auth_failures = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  /// kError frames sent for malformed or invalid client input (bad-request
  /// and unknown-subscription); auth failures and busy rejections are
  /// counted in their own fields only.
  std::uint64_t protocol_errors = 0;
  std::uint64_t slow_disconnects = 0;   ///< Write-queue overflows (frames or bytes).
  std::uint64_t pings_received = 0;     ///< Client keepalive probes answered.
  std::uint64_t keepalive_probes = 0;   ///< Server-initiated kPing probes.
  std::uint64_t keepalive_disconnects = 0;  ///< Peers declared dead after a probe.
  std::uint64_t requests_shed = 0;      ///< Rate-limited requests answered busy.
  std::uint64_t busy_rejections = 0;    ///< Admission rejections sent as kBusy.
};

class Server {
 public:
  /// The service must outlive the server. The listener is shared so tests
  /// (and in-process clients) can keep a handle to connect() against.
  Server(api::Service& service, std::shared_ptr<Listener> listener,
         ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the IO loops, worker pool, and accept loop. Call once.
  void start();

  /// Closes the listener and every live connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] ServerStats stats() const;

  /// Live (not yet torn down) connections. Also reaps finished threaded
  /// handlers — poll it periodically on a long-lived server (bgpcu_serve
  /// does, every epoch) so joined threads don't wait for the next accept.
  [[nodiscard]] std::size_t connection_count();

 private:
  class ConnHandler;          // shared protocol machinery (abstract)
  class ThreadedConnHandler;  // reader+writer threads (legacy / fallback)
  class EventConn;            // poller-driven connection state
  class IoLoop;               // one poller + its thread
  class WorkerPool;           // frame dispatch off the IO threads

  void accept_loop();
  void reap_finished();
  /// Runs `conn`'s inbox drain on the worker pool (or inline when
  /// worker_threads == 0).
  void submit_worker(std::shared_ptr<EventConn> conn);

  api::Service& service_;
  std::shared_ptr<Listener> listener_;
  ServerConfig config_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex conns_mutex_;
  /// Threaded handlers only; event connections live in their IoLoop.
  std::vector<std::shared_ptr<ConnHandler>> conns_;
  /// Created in the constructor (so scrape collectors can count them
  /// immediately), threads spawned in start().
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::unique_ptr<WorkerPool> workers_;
  std::atomic<std::uint64_t> next_conn_id_{0};
  std::size_t next_loop_ = 0;  ///< Accept-thread only (round-robin).

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> auth_failures{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> slow_disconnects{0};
    std::atomic<std::uint64_t> pings_received{0};
    std::atomic<std::uint64_t> keepalive_probes{0};
    std::atomic<std::uint64_t> keepalive_disconnects{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> busy_rejections{0};
  };
  mutable AtomicStats stats_;
  /// Open-connection gauge, computed at scrape time. Counts without reaping
  /// (no thread joins on the scraping thread). Declared last so it
  /// unregisters before conns_ is torn down.
  obs::ScopedCollector conns_collector_;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_SERVER_H
