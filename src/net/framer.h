// Incremental frame reassembly for byte-stream transports. A TCP (or
// loopback) read hands back arbitrary byte runs — half a header, three
// frames and a tail, one byte at a time — and FrameBuffer turns that into
// whole wire frames: append what arrived, extract complete frames until it
// returns nullopt. Malformed input (bad magic, unknown type, length-field
// inflation past the cap) throws api::WireFormatError at the earliest byte
// that proves the stream can never resynchronize.
#ifndef BGPCU_NET_FRAMER_H
#define BGPCU_NET_FRAMER_H

#include <cstdint>
#include <span>
#include <vector>

#include "api/wire.h"

namespace bgpcu::net {

class FrameBuffer {
 public:
  explicit FrameBuffer(std::size_t max_payload = api::kMaxFramePayload)
      : max_payload_(max_payload) {}

  void append(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// The next complete frame as owned whole-frame bytes (header included, so
  /// the api::decode_* functions accept them directly), or an empty vector
  /// when more input is needed. Throws api::WireFormatError on a poisoned
  /// stream.
  [[nodiscard]] std::vector<std::uint8_t> extract();

  /// Bytes buffered but not yet extracted.
  [[nodiscard]] std::size_t pending() const noexcept { return buffer_.size() - head_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;  ///< Consumed prefix, compacted lazily.
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_FRAMER_H
