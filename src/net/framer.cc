#include "net/framer.h"

namespace bgpcu::net {

std::vector<std::uint8_t> FrameBuffer::extract() {
  const auto view = std::span<const std::uint8_t>(buffer_).subspan(head_);
  const auto frame = api::try_parse_frame(view, max_payload_);
  if (!frame) {
    // Compact eagerly once the consumed prefix dominates, so a long-lived
    // connection's buffer doesn't grow with total traffic.
    if (head_ > 0 && head_ >= buffer_.size() / 2) {
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return {};
  }
  std::vector<std::uint8_t> whole(view.begin(),
                                  view.begin() + static_cast<std::ptrdiff_t>(frame->size));
  head_ += frame->size;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  }
  return whole;
}

}  // namespace bgpcu::net
