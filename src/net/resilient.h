// net::ResilientClient — the reconnecting, resume-from-epoch consumer the
// federation aggregator sits on. It wraps the frame protocol (net/client.h
// stays the simple one-connection client) with:
//
//   - capped exponential backoff with decorrelated jitter between connect
//     attempts, honoring the server's kBusy retry-after hint as a floor;
//   - feature negotiation (kHello2) with a sticky downgrade to the legacy
//     kHello handshake when the peer predates the reliability frames;
//   - gap-free subscription resume: on reconnect it re-subscribes with
//     replay_from = last_seen_epoch + 1 and trusts the ack's
//     replay_complete flag (computed atomically with the replay inside the
//     server's Service) to learn whether the event log still covered that
//     epoch. When the replay horizon has passed it, the client re-syncs
//     from a full snapshot and emits a GapDetected event carrying one
//     synthesized catch-up delta instead of silently dropping changes;
//   - per-request deadlines on query(), retrying across reconnects and
//     busy sheds until the deadline expires;
//   - optional client-side keepalive: an idle subscription stream is
//     probed with kPing so a dead link is detected instead of blocking
//     next_event() forever.
//
// Single-threaded like net::Client: call it from one thread. Reconnection
// happens lazily inside query()/next_event(), never on a background thread.
#ifndef BGPCU_NET_RESILIENT_H
#define BGPCU_NET_RESILIENT_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/classifier.h"
#include "net/client.h"
#include "net/framer.h"
#include "net/transport.h"

namespace bgpcu::net {

/// The server shed us with a kBusy frame (or legacy kServerBusy error);
/// carries the retry-after hint. Retryable — ResilientClient honors the
/// hint internally and only lets this escape when a deadline expires.
class BusyError : public std::runtime_error {
 public:
  explicit BusyError(api::BusyFrame busy)
      : std::runtime_error("server busy: " + busy.message), busy_(std::move(busy)) {}

  [[nodiscard]] const api::BusyFrame& busy() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t retry_after_ms() const noexcept { return busy_.retry_after_ms; }

 private:
  api::BusyFrame busy_;
};

/// The configured connect-attempt budget ran out. Distinct from plain
/// TransportError so callers (bgpcu_query) can map it to the
/// connect-failure exit code instead of retrying forever.
class RetriesExhausted : public TransportError {
 public:
  using TransportError::TransportError;
};

/// Capped exponential backoff with decorrelated jitter (each delay is drawn
/// uniformly from [initial, 3 * previous], clamped to cap) — reconnect
/// storms from many clients decorrelate instead of thundering in lockstep.
struct BackoffPolicy {
  std::uint64_t initial_ms = 100;
  std::uint64_t cap_ms = 10'000;
  std::uint64_t seed = 1;  ///< Jitter RNG seed; fix it for deterministic tests.
};

/// Next backoff delay. `prev_ms` is the previous delay (0 on the first
/// failure). Pure given the RNG state — tests drive it with a fixed seed.
[[nodiscard]] std::uint64_t decorrelated_backoff(std::uint64_t prev_ms,
                                                 const BackoffPolicy& policy,
                                                 std::mt19937_64& rng);

struct ResilientConfig {
  std::string token;
  BackoffPolicy backoff;
  /// Consecutive failed connect attempts before giving up (RetriesExhausted).
  /// 0 = retry forever.
  std::uint64_t max_connect_attempts = 0;
  /// Deadline for the welcome after a connect; a listener that accepts but
  /// never speaks cannot hang the client. 0 disables.
  std::uint64_t handshake_timeout_ms = 5000;
  /// Overall deadline for one query() call, spanning reconnects and busy
  /// deferrals. 0 disables (retry until a permanent error).
  std::uint64_t request_deadline_ms = 0;
  /// When > 0, next_event() probes an idle stream with kPing after this much
  /// silence; an unanswered probe (keepalive_timeout_ms) reconnects.
  std::uint64_t keepalive_interval_ms = 0;
  std::uint64_t keepalive_timeout_ms = 3000;
  std::size_t max_frame_payload = api::kMaxFramePayload;
  /// Backoff sleep hook; tests inject a recorder to run without wall-clock
  /// delays. Default: std::this_thread::sleep_for.
  std::function<void(std::chrono::milliseconds)> sleep_fn;
};

class ResilientClient {
 public:
  /// Dials one new transport connection; called for every (re)connect
  /// attempt. Throw TransportError on failure.
  using Connector = std::function<std::unique_ptr<Connection>()>;

  struct Event {
    enum class Kind : std::uint8_t {
      kDelta,        ///< One live or replayed epoch delta, as published.
      kGap,          ///< Replay horizon passed the resume epoch: `delta` is a
                     ///< synthesized catch-up diff covering [gap_from, gap_to].
      kReconnected,  ///< The link was re-established (`attempts` dials used).
    };
    Kind kind = Kind::kDelta;
    api::EpochDelta delta;
    stream::Epoch gap_from = 0;
    stream::Epoch gap_to = 0;
    std::uint64_t attempts = 0;
  };

  struct Stats {
    std::uint64_t connect_attempts = 0;
    std::uint64_t connects = 0;  ///< Successful handshakes.
    std::uint64_t reconnects = 0;
    std::uint64_t gap_resyncs = 0;
    std::uint64_t busy_deferrals = 0;
    std::uint64_t pings_sent = 0;
    std::uint64_t legacy_downgrades = 0;
  };

  ResilientClient(Connector connector, ResilientConfig config);

  /// Connects (if needed) and runs one query with retry/deadline semantics.
  /// Throws ProtocolError on a permanent server answer (auth failure, bad
  /// request), BusyError/TransportError once the deadline or attempt budget
  /// is exhausted.
  [[nodiscard]] api::QueryResponse query(const api::QueryRequest& request);

  /// Registers the (single) subscription this client maintains across
  /// reconnects and connects immediately. `replay_from` seeds the first
  /// subscribe; after any reconnect the client resumes from its own
  /// last-seen epoch + 1.
  void subscribe(api::SubscriptionFilter filter,
                 std::optional<stream::Epoch> replay_from = std::nullopt);

  /// The next subscription event, reconnecting and re-syncing as needed.
  /// Blocks until an event arrives; nullopt only when no subscription is
  /// registered or the client was close()d. Throws like query() on
  /// permanent failures.
  [[nodiscard]] std::optional<Event> next_event();

  /// Handshake result of the current/last connection. For a legacy peer the
  /// feature bits are 0 and replay_horizon is empty.
  [[nodiscard]] const api::Welcome2Frame& welcome() const noexcept { return welcome_; }

  /// Epoch of the newest delta delivered (or covered by a gap re-sync).
  [[nodiscard]] std::optional<stream::Epoch> last_seen_epoch() const noexcept {
    return last_seen_;
  }

  /// The client's materialized ASN -> class view, folded from every
  /// delivered delta and gap re-sync. ASes classified none/none are absent.
  [[nodiscard]] const std::map<bgp::Asn, core::UsageClass>& class_state() const noexcept {
    return state_;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Drops the connection and stops reconnecting; next_event() returns
  /// nullopt from now on.
  void close();

 private:
  void ensure_session();
  /// Dials + handshakes until success; returns attempts used. Resets
  /// frames_/conn_ state. Throws ProtocolError (permanent) or
  /// RetriesExhausted.
  std::uint64_t connect_with_backoff();
  void handshake();
  /// (Re-)issues the subscribe on the current connection, resuming from
  /// last_seen_ + 1 and running the snapshot re-sync when the ack reports
  /// the replay horizon passed it.
  void establish_subscription();
  [[nodiscard]] api::QueryResponse query_on_conn(const api::QueryRequest& request,
                                                 std::vector<api::EventFrame>* held);
  /// Applies one inbound stream frame (event/ping/pong/busy/error).
  void dispatch_stream_frame(const std::vector<std::uint8_t>& frame);
  void deliver_event(const api::EventFrame& event);
  void apply_changes(const std::vector<stream::ClassChange>& changes);
  [[nodiscard]] api::EpochDelta synthesize_gap_delta(const core::InferenceResult& snap,
                                                     stream::Epoch epoch) const;
  /// True when the link is still up and a frame was handled; false = probe
  /// failed, reconnect.
  bool probe_alive();
  void drop_connection();
  void sleep_backoff(std::optional<std::uint64_t> floor_ms);
  /// Next complete frame; empty on EOF *or* an expired `timeout` (0 = block
  /// forever) — the caller disambiguates by probing.
  [[nodiscard]] std::vector<std::uint8_t> read_frame(std::chrono::milliseconds timeout);
  void send(const std::vector<std::uint8_t>& frame);

  Connector connector_;
  ResilientConfig config_;
  std::unique_ptr<Connection> conn_;
  FrameBuffer frames_;
  std::vector<std::uint8_t> chunk_;
  api::Welcome2Frame welcome_;
  std::mt19937_64 rng_;
  std::uint64_t prev_backoff_ms_ = 0;
  bool legacy_ = false;  ///< Sticky: the peer rejected kHello2 once.
  bool closed_ = false;
  bool ever_connected_ = false;

  bool subscribed_ = false;
  bool sub_active_ = false;  ///< Subscription live on the *current* connection.
  api::SubscriptionFilter filter_;
  std::optional<stream::Epoch> initial_replay_from_;
  std::uint64_t subscription_id_ = 0;
  std::optional<stream::Epoch> last_seen_;
  /// Deltas below this epoch are replay duplicates of state we already
  /// hold (resume overlap or snapshot coverage) and are dropped.
  std::optional<stream::Epoch> min_epoch_;
  std::map<bgp::Asn, core::UsageClass> state_;
  std::deque<Event> out_events_;

  std::uint64_t next_request_id_ = 1;
  std::uint64_t ping_nonce_ = 0;
  Stats stats_;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_RESILIENT_H
