#include "stream/delta.h"

#include <algorithm>

namespace bgpcu::stream {

std::string ClassChange::to_string(Epoch epoch) const {
  std::string out = "AS " + std::to_string(asn) + " changed " + before.code() + "->" +
                    after.code() + " at epoch " + std::to_string(epoch);
  return out;
}

std::vector<ClassChange> diff_classifications(const core::InferenceResult& before,
                                              const core::InferenceResult& after) {
  std::vector<bgp::Asn> asns;
  asns.reserve(before.counter_map().size() + after.counter_map().size());
  for (const auto& [asn, k] : before.counter_map()) asns.push_back(asn);
  for (const auto& [asn, k] : after.counter_map()) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());

  std::vector<ClassChange> changes;
  for (const auto asn : asns) {
    ClassChange change;
    change.asn = asn;
    change.before = before.usage(asn);
    change.after = after.usage(asn);
    if (change.before != change.after) changes.push_back(change);
  }
  return changes;
}

}  // namespace bgpcu::stream
