// The streaming inference core: a long-running service wrapper around the
// paper's column-counting algorithm. Tuples arrive in batches (from MRT
// update feeds, RIB refreshes, or simulators), land in ASN-hash shards under
// per-shard mutexes (the concurrent hot path), and age out of a sliding
// epoch window when configured. `snapshot()` produces an InferenceResult
// that is bit-for-bit identical to what `core::ColumnEngine::run` would
// return on the deduplicated union of all live tuples — both call the same
// `core::sweep_columns` primitive — which is this subsystem's correctness
// contract (enforced by tests/stream/test_stream_property.cc).
//
// Incrementality model: the column algorithm transfers classification
// knowledge from lower to higher path indices, so a new tuple can in
// principle flip evidence at every column — exact per-column deltas are not
// possible. What *is* hoisted out of the sweep is everything per-tuple:
// normalization, deduplication, and the upper-field masks are paid once at
// ingest; a snapshot only gathers cached views and sweeps, and a snapshot of
// an unchanged engine returns the cached result without sweeping at all.
// The peer-column (index 1) evidence, where Cond1 is vacuous, is maintained
// fully incrementally and queryable in real time via `live_counters`.
//
// Snapshot-outside-lock protocol: a sweep at production scale takes orders
// of magnitude longer than collecting its input, so snapshot() holds the
// exclusive engine lock only while bringing a core::IndexedDataset up to
// date with the live tuple set (a consistent cut, stamped with the
// shard-version sum), releases the lock, and sweeps with no lock held —
// ingest and live queries proceed concurrently with the sweep. On completion
// the result is installed into the cache only if its stamp is not older than
// the cached one (concurrent snapshots race benignly; the newest consistent
// result wins). Results are handed out as shared_ptr<const InferenceResult>,
// so cache hits share one immutable object instead of deep-copying the
// counter map per call.
//
// Incremental indexing (default): the engine owns a core::IncrementalIndex
// that persists between snapshots; shards journal every accept/evict as an
// IndexDelta, and the exclusive section shrinks to "drain the journals,
// patch the index, stamp the cut" — proportional to the churn since the last
// snapshot, not to the live tuple set. Eviction-heavy windows tombstone rows
// that are compacted lazily, and a journal overflow (snapshot-starved
// engine) or an apply failure falls back to one full rebuild from the
// shards' authoritative state. Sweeps are single-flight, which is also what
// keeps the shared index immutable while an unlocked sweep reads it. With
// `incremental_index` off the engine rebuilds an owned IndexedDataset per
// cold snapshot (the pre-incremental protocol, kept as a fallback and as the
// bench baseline).
#ifndef BGPCU_STREAM_ENGINE_H
#define BGPCU_STREAM_ENGINE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "stream/shard.h"

namespace bgpcu::stream {

/// Stream engine tuning knobs.
struct StreamConfig {
  core::EngineConfig engine;  ///< Thresholds + sweep limits for snapshots.
  /// Number of ASN-hash shards; ingest from distinct peers contends only
  /// within a shard. Clamped to >= 1.
  std::size_t shards = 8;
  /// Sliding window in epochs: a snapshot at epoch E covers tuples last seen
  /// at epochs (E - window_epochs, E]. 0 = unbounded (nothing ages out).
  std::uint64_t window_epochs = 0;
  /// Maintain the sweep index incrementally across snapshots (see header
  /// note). Off = rebuild an owned IndexedDataset per cold snapshot.
  bool incremental_index = true;
  /// Tombstone-compaction / full-rebuild thresholds for the incremental
  /// index; the defaults suit production scale, tests shrink them.
  core::IncrementalIndexConfig index;
  /// Per-shard delta-journal overflow threshold (see TupleShard::kJournalCap).
  std::size_t journal_cap = TupleShard::kJournalCap;
};

/// An immutable, shareable inference snapshot (see snapshot()).
using SnapshotPtr = std::shared_ptr<const core::InferenceResult>;

/// One shard's durable state (see StreamEngine::checkpoint_state).
struct ShardState {
  std::uint64_t next_key = 0;
  std::vector<StoredTuple> tuples;
};

/// The engine's complete durable state: everything a restarted process needs
/// to resume ingest at the same epoch with identical window aging and stable
/// index row keys. Produced by checkpoint_state(), consumed by
/// restore_state(); the durable store serializes it (store/format.h).
struct EngineState {
  Epoch epoch = 0;
  std::uint64_t evicted_total = 0;
  std::vector<ShardState> shards;
};

/// EngineState plus the incremental index's serialized dense-array image
/// (empty when incremental indexing is off), captured at one consistent cut.
struct CheckpointState {
  EngineState state;
  std::vector<std::uint8_t> index_image;
};

/// Snapshot-path health counters (see StreamEngine::snapshot_stats). All
/// monotone over the engine's lifetime except locked_ns_last.
struct SnapshotStats {
  std::uint64_t sweeps = 0;      ///< Cold snapshots (collected + swept).
  std::uint64_t cache_hits = 0;  ///< Snapshots served from the cached result.
  /// Add/remove deltas patched into the incremental index.
  std::uint64_t deltas_applied = 0;
  std::uint64_t group_compactions = 0;  ///< Lazy tombstone compactions.
  /// Full index (re)builds: threshold-triggered id reassignments plus
  /// journal-overflow / apply-failure rebuilds from shard state.
  std::uint64_t index_rebuilds = 0;
  /// Exclusive-lock (collect/apply) time of the most recent cold snapshot,
  /// and the lifetime total — the engine's dominant critical section.
  std::uint64_t locked_ns_last = 0;
  std::uint64_t locked_ns_total = 0;

  friend bool operator==(const SnapshotStats&, const SnapshotStats&) = default;
};

/// Incremental, sharded community-usage classification engine.
///
/// Thread model: `ingest` and `live_counters` may run concurrently from any
/// number of threads (shared engine lock + per-shard mutexes);
/// `advance_epoch` takes the exclusive engine lock; `snapshot` takes it only
/// briefly to collect an owned input cut, then sweeps with no lock held —
/// ingest and live queries are never blocked for the duration of a sweep.
class StreamEngine {
 public:
  explicit StreamEngine(StreamConfig config = {});

  /// Ingests one batch at the current epoch. Tuples are normalized, masked,
  /// and partitioned by peer-ASN hash outside any lock, then each affected
  /// shard is locked exactly once — the concurrent hot path.
  IngestStats ingest(core::Dataset batch);

  /// Advances to the next epoch and evicts tuples that fell out of the
  /// window (no-op eviction when window_epochs == 0). Returns the new epoch.
  Epoch advance_epoch();

  [[nodiscard]] Epoch epoch() const;

  /// Exact inference over the live tuple set as of this call's consistent
  /// cut. Returns the cached result (same shared object, no copy) when
  /// nothing changed since the previous snapshot; otherwise collects the cut
  /// under the lock and sweeps outside it (see header note).
  [[nodiscard]] SnapshotPtr snapshot() const;

  /// Real-time peer-column evidence for `asn` (no sweep; see header note).
  [[nodiscard]] core::UsageCounters live_counters(bgp::Asn asn) const;

  /// Number of live unique tuples across all shards.
  [[nodiscard]] std::size_t live_tuples() const;

  /// Tuples evicted by window aging over the engine's lifetime.
  [[nodiscard]] std::uint64_t evicted_total() const;

  /// Snapshot-path health: locked-phase time, cache hits, incremental-index
  /// maintenance counts. Lock-light (shared lock, no sweep).
  [[nodiscard]] SnapshotStats snapshot_stats() const;

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

  /// Exports the engine's durable state at a consistent cut: waits out any
  /// in-flight sweep, drains the shard journals into the incremental index
  /// (so the exported image is current and the journals are empty), then
  /// copies every shard's tuples and the index image. The engine remains
  /// fully usable afterwards.
  [[nodiscard]] CheckpointState checkpoint_state() const;

  /// Replaces the engine's state with a checkpoint. When the shard count
  /// matches the exporting engine's, tuples keep their keys and the index
  /// image (if non-empty and consistent) is adopted, skipping the rebuild;
  /// otherwise tuples are redistributed under the current shard count with
  /// fresh keys and the next snapshot rebuilds the index from shard state.
  /// Any cached snapshot is dropped.
  void restore_state(EngineState state, std::span<const std::uint8_t> index_image = {});

  /// Test instrumentation: invoked by snapshot() after the collection lock
  /// is released and before the sweep starts. Lets concurrency tests prove
  /// deterministically that ingest/live queries run while a sweep is in
  /// flight. Set before going concurrent; not synchronized itself.
  void set_after_collect_hook(std::function<void()> hook) {
    after_collect_hook_ = std::move(hook);
  }

 private:
  [[nodiscard]] std::size_t shard_of(bgp::Asn peer) const noexcept;

  /// Brings index_ up to date with the shards: drains every journal and
  /// patches the index, or rebuilds it from shard state after an overflow /
  /// prior apply failure. `live` is the shard-size sum at the cut; a
  /// mismatch against the patched index throws std::logic_error (a journal
  /// and its shard disagreeing is a bug, never a recoverable state).
  /// Caller holds engine_mutex_ exclusively.
  void apply_pending_deltas_locked(std::size_t live) const;

  StreamConfig config_;
  std::vector<std::unique_ptr<TupleShard>> shards_;
  /// Shared: ingest/live queries. Exclusive: epoch advance + snapshot's
  /// collection phase (the sweep itself runs with no lock held).
  mutable std::shared_mutex engine_mutex_;
  std::atomic<Epoch> epoch_{0};
  std::atomic<std::uint64_t> evicted_total_{0};
  /// Snapshot cache, stamped with the shard-version sum at its collection
  /// cut. Guarded by engine_mutex_ (exclusive), as are the single-flight
  /// fields: sweeps run one at a time — concurrent cold snapshots wait on
  /// the cv and usually resolve from the cache when the in-flight sweep
  /// installs, instead of each burning a duplicate sweep.
  mutable SnapshotPtr cached_;
  mutable std::uint64_t cached_version_ = 0;
  mutable std::condition_variable_any snapshot_cv_;
  mutable bool sweep_inflight_ = false;
  /// The persistent sweep index (incremental mode). Mutated only inside the
  /// exclusive collect phase while sweep_inflight_ is held, which is what
  /// makes the unlocked sweep's read of it race-free.
  mutable core::IncrementalIndex index_;
  /// Cleared when an apply failed mid-flight (index state unknown); the next
  /// snapshot rebuilds from the shards' authoritative state.
  mutable bool index_valid_ = true;
  /// Guarded by engine_mutex_ (exclusive writes) except cache_hits, which
  /// fast-path readers bump under the shared lock.
  mutable SnapshotStats snap_stats_;
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  std::function<void()> after_collect_hook_;
  /// Scrape-time gauges (live tuples, epoch, index occupancy); registered in
  /// the constructor, summed across engines at scrape. Declared last so they
  /// unregister before the state their callbacks read is torn down.
  obs::ScopedCollector live_tuples_collector_;
  obs::ScopedCollector epoch_collector_;
  obs::ScopedCollector index_live_collector_;
  obs::ScopedCollector index_dead_collector_;
};

}  // namespace bgpcu::stream

#endif  // BGPCU_STREAM_ENGINE_H
