// The streaming inference core: a long-running service wrapper around the
// paper's column-counting algorithm. Tuples arrive in batches (from MRT
// update feeds, RIB refreshes, or simulators), land in ASN-hash shards under
// per-shard mutexes (the concurrent hot path), and age out of a sliding
// epoch window when configured. `snapshot()` produces an InferenceResult
// that is bit-for-bit identical to what `core::ColumnEngine::run` would
// return on the deduplicated union of all live tuples — both call the same
// `core::sweep_columns` primitive — which is this subsystem's correctness
// contract (enforced by tests/stream/test_stream_property.cc).
//
// Incrementality model: the column algorithm transfers classification
// knowledge from lower to higher path indices, so a new tuple can in
// principle flip evidence at every column — exact per-column deltas are not
// possible. What *is* hoisted out of the sweep is everything per-tuple:
// normalization, deduplication, and the upper-field masks are paid once at
// ingest; a snapshot only gathers cached views and sweeps, and a snapshot of
// an unchanged engine returns the cached result without sweeping at all.
// The peer-column (index 1) evidence, where Cond1 is vacuous, is maintained
// fully incrementally and queryable in real time via `live_counters`.
//
// Snapshot-outside-lock protocol: a sweep at production scale takes orders
// of magnitude longer than collecting its input, so snapshot() holds the
// exclusive engine lock only while building an *owned* core::IndexedDataset
// from the shards (a consistent cut of the live tuple set, stamped with the
// shard-version sum), releases the lock, and sweeps the owned index with no
// lock held — ingest and live queries proceed concurrently with the sweep.
// On completion the result is installed into the cache only if its stamp is
// not older than the cached one (concurrent snapshots race benignly; the
// newest consistent result wins). Results are handed out as
// shared_ptr<const InferenceResult>, so cache hits share one immutable
// object instead of deep-copying the counter map per call.
#ifndef BGPCU_STREAM_ENGINE_H
#define BGPCU_STREAM_ENGINE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/engine.h"
#include "stream/shard.h"

namespace bgpcu::stream {

/// Stream engine tuning knobs.
struct StreamConfig {
  core::EngineConfig engine;  ///< Thresholds + sweep limits for snapshots.
  /// Number of ASN-hash shards; ingest from distinct peers contends only
  /// within a shard. Clamped to >= 1.
  std::size_t shards = 8;
  /// Sliding window in epochs: a snapshot at epoch E covers tuples last seen
  /// at epochs (E - window_epochs, E]. 0 = unbounded (nothing ages out).
  std::uint64_t window_epochs = 0;
};

/// An immutable, shareable inference snapshot (see snapshot()).
using SnapshotPtr = std::shared_ptr<const core::InferenceResult>;

/// Incremental, sharded community-usage classification engine.
///
/// Thread model: `ingest` and `live_counters` may run concurrently from any
/// number of threads (shared engine lock + per-shard mutexes);
/// `advance_epoch` takes the exclusive engine lock; `snapshot` takes it only
/// briefly to collect an owned input cut, then sweeps with no lock held —
/// ingest and live queries are never blocked for the duration of a sweep.
class StreamEngine {
 public:
  explicit StreamEngine(StreamConfig config = {});

  /// Ingests one batch at the current epoch. Tuples are normalized, masked,
  /// and partitioned by peer-ASN hash outside any lock, then each affected
  /// shard is locked exactly once — the concurrent hot path.
  IngestStats ingest(core::Dataset batch);

  /// Advances to the next epoch and evicts tuples that fell out of the
  /// window (no-op eviction when window_epochs == 0). Returns the new epoch.
  Epoch advance_epoch();

  [[nodiscard]] Epoch epoch() const;

  /// Exact inference over the live tuple set as of this call's consistent
  /// cut. Returns the cached result (same shared object, no copy) when
  /// nothing changed since the previous snapshot; otherwise collects the cut
  /// under the lock and sweeps outside it (see header note).
  [[nodiscard]] SnapshotPtr snapshot() const;

  /// Real-time peer-column evidence for `asn` (no sweep; see header note).
  [[nodiscard]] core::UsageCounters live_counters(bgp::Asn asn) const;

  /// Number of live unique tuples across all shards.
  [[nodiscard]] std::size_t live_tuples() const;

  /// Tuples evicted by window aging over the engine's lifetime.
  [[nodiscard]] std::uint64_t evicted_total() const;

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

  /// Test instrumentation: invoked by snapshot() after the collection lock
  /// is released and before the sweep starts. Lets concurrency tests prove
  /// deterministically that ingest/live queries run while a sweep is in
  /// flight. Set before going concurrent; not synchronized itself.
  void set_after_collect_hook(std::function<void()> hook) {
    after_collect_hook_ = std::move(hook);
  }

 private:
  [[nodiscard]] std::size_t shard_of(bgp::Asn peer) const noexcept;

  StreamConfig config_;
  std::vector<std::unique_ptr<TupleShard>> shards_;
  /// Shared: ingest/live queries. Exclusive: epoch advance + snapshot's
  /// collection phase (the sweep itself runs with no lock held).
  mutable std::shared_mutex engine_mutex_;
  std::atomic<Epoch> epoch_{0};
  std::atomic<std::uint64_t> evicted_total_{0};
  /// Snapshot cache, stamped with the shard-version sum at its collection
  /// cut. Guarded by engine_mutex_ (exclusive), as are the single-flight
  /// fields: sweeps run one at a time — concurrent cold snapshots wait on
  /// the cv and usually resolve from the cache when the in-flight sweep
  /// installs, instead of each burning a duplicate sweep.
  mutable SnapshotPtr cached_;
  mutable std::uint64_t cached_version_ = 0;
  mutable std::condition_variable_any snapshot_cv_;
  mutable bool sweep_inflight_ = false;
  std::function<void()> after_collect_hook_;
};

}  // namespace bgpcu::stream

#endif  // BGPCU_STREAM_ENGINE_H
