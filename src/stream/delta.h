// Snapshot-to-snapshot classification deltas: the stream service's "AS X
// changed tf -> tc at epoch E" feed. Consumers are anomaly detectors in the
// CommunityWatch mold — they care about class transitions, not raw counter
// motion, so a delta is emitted only when the two-character class code
// actually changes.
#ifndef BGPCU_STREAM_DELTA_H
#define BGPCU_STREAM_DELTA_H

#include <string>
#include <vector>

#include "core/engine.h"
#include "stream/shard.h"

namespace bgpcu::stream {

/// One AS whose usage class differs between two snapshots.
struct ClassChange {
  bgp::Asn asn = 0;
  core::UsageClass before;  ///< kNone/kNone when the AS is new.
  core::UsageClass after;   ///< kNone/kNone when the AS disappeared.

  /// "AS X changed tf->tc at epoch E" (epoch supplied by the caller).
  [[nodiscard]] std::string to_string(Epoch epoch) const;

  friend bool operator==(const ClassChange&, const ClassChange&) = default;
};

/// All class transitions from `before` to `after`, sorted by ASN. Each
/// snapshot is classified under its own thresholds. ASes absent from a
/// snapshot's counter map classify as none/none on that side.
[[nodiscard]] std::vector<ClassChange> diff_classifications(
    const core::InferenceResult& before, const core::InferenceResult& after);

}  // namespace bgpcu::stream

#endif  // BGPCU_STREAM_DELTA_H
