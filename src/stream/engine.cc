#include "stream/engine.h"

#include <algorithm>
#include <utility>

namespace bgpcu::stream {

namespace {

/// SplitMix64 finalizer: ASNs are dense small integers, so identity hashing
/// would pile consecutive peers into neighboring shards; mix first.
std::uint64_t mix_asn(bgp::Asn asn) noexcept {
  std::uint64_t z = static_cast<std::uint64_t>(asn) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

StreamEngine::StreamEngine(StreamConfig config) : config_(config) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<TupleShard>());
  }
}

std::size_t StreamEngine::shard_of(bgp::Asn peer) const noexcept {
  return static_cast<std::size_t>(mix_asn(peer) % shards_.size());
}

IngestStats StreamEngine::ingest(core::Dataset batch) {
  IngestStats stats;

  // Phase 1, lock-free: normalize, mask, and partition by peer-ASN hash.
  std::vector<std::vector<PreparedTuple>> buckets(shards_.size());
  for (auto& tuple : batch) {
    bgp::normalize(tuple.comms);
    const auto view = core::TupleView::prepare(tuple);
    if (!view) {
      ++stats.rejected;
      continue;
    }
    buckets[shard_of(tuple.peer())].push_back({std::move(tuple), view->upper_mask});
  }

  // Phase 2: one lock acquisition per affected shard.
  const std::shared_lock lock(engine_mutex_);
  const Epoch epoch = epoch_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    shards_[i]->ingest_batch(std::move(buckets[i]), epoch, stats);
  }
  return stats;
}

Epoch StreamEngine::advance_epoch() {
  const std::unique_lock lock(engine_mutex_);
  const Epoch next = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(next, std::memory_order_relaxed);
  if (config_.window_epochs != 0 && next >= config_.window_epochs) {
    const Epoch min_epoch = next - config_.window_epochs + 1;
    std::uint64_t evicted = 0;
    for (auto& shard : shards_) evicted += shard->evict_older_than(min_epoch);
    evicted_total_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return next;
}

Epoch StreamEngine::epoch() const { return epoch_.load(std::memory_order_relaxed); }

SnapshotPtr StreamEngine::snapshot() const {
  // Fast path, shared lock only: an unchanged engine serves the cached
  // handle without excluding ingest, live queries, or other cache hits.
  // cached_/cached_version_ are written only under the exclusive lock, so
  // reading them under a shared lock is race-free.
  {
    const std::shared_lock lock(engine_mutex_);
    std::uint64_t version = 0;
    for (const auto& shard : shards_) version += shard->version();
    if (cached_ && cached_version_ == version) return cached_;
  }

  // Collection phase, under the exclusive lock: stamp a consistent cut of
  // the live tuple set and copy it into an owned index. This is one pass
  // over the tuples — orders of magnitude cheaper than the sweep it feeds.
  core::IndexedDataset data;
  std::uint64_t version = 0;
  {
    std::unique_lock lock(engine_mutex_);
    std::size_t live = 0;
    for (;;) {
      version = 0;
      live = 0;
      for (const auto& shard : shards_) {
        version += shard->version();
        live += shard->size();
      }
      if (cached_ && cached_version_ == version) return cached_;
      // Single-flight: while any sweep is in flight, wait for its install
      // instead of starting a duplicate — most waiters then hit the cache
      // on re-check. The re-read stamp keeps the eventual cut valid for
      // this call: it names state observed after the call began. Sweeps
      // were fully serialized by the old exclusive-lock protocol too; the
      // difference is that ingest/live queries no longer wait with them.
      if (!sweep_inflight_) break;
      snapshot_cv_.wait(lock);
    }
    sweep_inflight_ = true;
    // From here on every exit path must clear the flag and notify, or
    // every future snapshot() would wait forever on the cv.
    try {
      std::vector<core::TupleView> views;
      views.reserve(live);
      for (const auto& shard : shards_) shard->collect_views(views);
      data = core::IndexedDataset(views);
    } catch (...) {
      sweep_inflight_ = false;  // lock still held here
      snapshot_cv_.notify_all();
      throw;
    }
  }

  // Sweep phase, no lock held: ingest, live queries, and other snapshots
  // all proceed concurrently.
  SnapshotPtr result;
  try {
    if (after_collect_hook_) after_collect_hook_();
    result = std::make_shared<const core::InferenceResult>(
        core::sweep_columns(data, config_.engine));
  } catch (...) {
    const std::unique_lock lock(engine_mutex_);
    sweep_inflight_ = false;
    snapshot_cv_.notify_all();
    throw;
  }

  // Install phase: shard versions are monotone, so a larger stamp means a
  // newer cut — never replace the cache with an older concurrent sweep.
  {
    const std::unique_lock lock(engine_mutex_);
    sweep_inflight_ = false;
    if (!cached_ || cached_version_ <= version) {
      cached_ = result;
      cached_version_ = version;
    }
  }
  snapshot_cv_.notify_all();
  return result;
}

core::UsageCounters StreamEngine::live_counters(bgp::Asn asn) const {
  const std::shared_lock lock(engine_mutex_);
  return shards_[shard_of(asn)]->live_counters(asn);
}

std::size_t StreamEngine::live_tuples() const {
  const std::shared_lock lock(engine_mutex_);
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::uint64_t StreamEngine::evicted_total() const {
  return evicted_total_.load(std::memory_order_relaxed);
}

}  // namespace bgpcu::stream
