#include "stream/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "obs/wellknown.h"

namespace bgpcu::stream {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - since).count());
}

/// SplitMix64 finalizer: ASNs are dense small integers, so identity hashing
/// would pile consecutive peers into neighboring shards; mix first.
std::uint64_t mix_asn(bgp::Asn asn) noexcept {
  std::uint64_t z = static_cast<std::uint64_t>(asn) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

StreamEngine::StreamEngine(StreamConfig config) : config_(config), index_(config.index) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    // Interleaved key ranges keep shard-assigned tuple keys unique
    // engine-wide without any cross-shard coordination.
    shards_.push_back(std::make_unique<TupleShard>(i, config_.shards,
                                                   config_.incremental_index,
                                                   config_.journal_cap));
  }

  // Force the catalog before registering collectors so no instrumented call
  // site ever has to intern (and take the registry mutex) while holding
  // engine_mutex_ — that ordering is what keeps scrape callbacks that take
  // the shared engine lock deadlock-free.
  obs::metrics();
  auto& registry = obs::Registry::global();
  live_tuples_collector_ = registry.add_collector(
      "bgpcu_stream_live_tuples", "Live unique tuples across all shards", {}, [this] {
        std::size_t total = 0;
        for (const auto& shard : shards_) total += shard->size();
        return static_cast<double>(total);
      });
  epoch_collector_ = registry.add_collector(
      "bgpcu_stream_epoch", "Current ingestion epoch (summed across engines)", {},
      [this] { return static_cast<double>(epoch_.load(std::memory_order_relaxed)); });
  if (config_.incremental_index) {
    index_live_collector_ = registry.add_collector(
        "bgpcu_index_live_rows", "Live rows in the incremental sweep index", {}, [this] {
          const std::shared_lock lock(engine_mutex_);
          return static_cast<double>(index_.live_tuples());
        });
    index_dead_collector_ = registry.add_collector(
        "bgpcu_index_dead_rows",
        "Tombstoned index rows awaiting lazy compaction", {}, [this] {
          const std::shared_lock lock(engine_mutex_);
          return static_cast<double>(index_.dead_rows());
        });
  }
}

std::size_t StreamEngine::shard_of(bgp::Asn peer) const noexcept {
  return static_cast<std::size_t>(mix_asn(peer) % shards_.size());
}

IngestStats StreamEngine::ingest(core::Dataset batch) {
  IngestStats stats;

  // Phase 1, lock-free: normalize, mask, and partition by peer-ASN hash.
  std::vector<std::vector<PreparedTuple>> buckets(shards_.size());
  for (auto& tuple : batch) {
    bgp::normalize(tuple.comms);
    const auto view = core::TupleView::prepare(tuple);
    if (!view) {
      ++stats.rejected;
      continue;
    }
    buckets[shard_of(tuple.peer())].push_back({std::move(tuple), view->upper_mask});
  }
  if (stats.rejected != 0) obs::metrics().stream_ingest_rejected.add(stats.rejected);

  // Phase 2: one lock acquisition per affected shard.
  const std::shared_lock lock(engine_mutex_);
  const Epoch epoch = epoch_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    shards_[i]->ingest_batch(std::move(buckets[i]), epoch, stats);
  }
  return stats;
}

Epoch StreamEngine::advance_epoch() {
  const std::unique_lock lock(engine_mutex_);
  obs::metrics().stream_epoch_advances.add(1);
  const Epoch next = epoch_.load(std::memory_order_relaxed) + 1;
  epoch_.store(next, std::memory_order_relaxed);
  if (config_.window_epochs != 0 && next >= config_.window_epochs) {
    const Epoch min_epoch = next - config_.window_epochs + 1;
    std::uint64_t evicted = 0;
    for (auto& shard : shards_) evicted += shard->evict_older_than(min_epoch);
    evicted_total_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return next;
}

Epoch StreamEngine::epoch() const { return epoch_.load(std::memory_order_relaxed); }

void StreamEngine::apply_pending_deltas_locked(std::size_t live) const {
  auto& m = obs::metrics();
  std::vector<core::IndexDelta> deltas;
  bool journals_intact = index_valid_;
  {
    obs::StageTimer drain_span(m.snapshot_stage_drain_ns);
    for (const auto& shard : shards_) {
      // Drain every shard even after a failure: each drain also clears the
      // shard's journal/overflow state, re-anchoring it at this cut.
      if (!shard->drain_deltas(deltas)) journals_intact = false;
    }
  }
  obs::StageTimer patch_span(m.snapshot_stage_patch_ns);
  if (!journals_intact) {
    // A journal overflowed (or a previous apply died): the deltas no longer
    // reconstruct the live set. Rebuild once from the shards' authoritative
    // state — same cost as a pre-incremental snapshot, then incremental
    // maintenance resumes from this cut.
    index_.reset();
    deltas.clear();
    for (const auto& shard : shards_) shard->export_live(deltas);
    ++snap_stats_.index_rebuilds;
    m.index_rebuilds.add(1);
  }
  const auto before = index_.stats();
  index_valid_ = false;  // until apply() lands in full
  index_.apply(std::move(deltas));
  index_valid_ = true;
  const auto& after = index_.stats();
  const auto applied = (after.adds_applied - before.adds_applied) +
                       (after.removes_applied - before.removes_applied);
  snap_stats_.deltas_applied += applied;
  snap_stats_.group_compactions += after.group_compactions - before.group_compactions;
  snap_stats_.index_rebuilds += after.full_rebuilds - before.full_rebuilds;
  if (applied != 0) m.index_deltas_applied.add(applied);
  if (const auto n = after.group_compactions - before.group_compactions) {
    m.index_compactions.add(n);
  }
  if (const auto n = after.full_rebuilds - before.full_rebuilds) m.index_rebuilds.add(n);
  if (index_.live_tuples() != live) {
    // Patched index and shard stores disagreeing means a corrupt journal —
    // a bug, never a recoverable state. Fail loudly; the poisoned index is
    // rebuilt from shard state on the next snapshot (index_valid_ false).
    index_valid_ = false;
    throw std::logic_error("stream: incremental index diverged from shard state");
  }
}

SnapshotPtr StreamEngine::snapshot() const {
  // Fast path, shared lock only: an unchanged engine serves the cached
  // handle without excluding ingest, live queries, or other cache hits.
  // cached_/cached_version_ are written only under the exclusive lock, so
  // reading them under a shared lock is race-free.
  auto& m = obs::metrics();
  {
    const std::shared_lock lock(engine_mutex_);
    std::uint64_t version = 0;
    for (const auto& shard : shards_) version += shard->version();
    if (cached_ && cached_version_ == version) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      m.snapshot_cache_hits.add(1);
      return cached_;
    }
  }

  // Collection phase, under the exclusive lock: stamp a consistent cut of
  // the live tuple set and bring the sweep input up to date with it. In
  // incremental mode that patches the persistent index with the journaled
  // deltas since the last cut (work proportional to the churn); otherwise
  // it copies the live tuples into an owned index (one full pass).
  core::IndexedDataset rebuilt;
  const core::IndexedDataset* sweep_input = nullptr;
  std::uint64_t version = 0;
  {
    std::unique_lock lock(engine_mutex_);
    std::size_t live = 0;
    for (;;) {
      obs::StageTimer stamp_span(m.snapshot_stage_stamp_ns);
      version = 0;
      live = 0;
      for (const auto& shard : shards_) {
        version += shard->version();
        live += shard->size();
      }
      stamp_span.stop();  // the cv wait below must not count as stamp time
      if (cached_ && cached_version_ == version) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        m.snapshot_cache_hits.add(1);
        return cached_;
      }
      // Single-flight: while any sweep is in flight, wait for its install
      // instead of starting a duplicate — most waiters then hit the cache
      // on re-check. The re-read stamp keeps the eventual cut valid for
      // this call: it names state observed after the call began. Sweeps
      // were fully serialized by the old exclusive-lock protocol too; the
      // difference is that ingest/live queries no longer wait with them.
      // Single-flight is also what lets an unlocked sweep read the shared
      // incremental index: nothing mutates it until this sweep installs.
      if (!sweep_inflight_) break;
      snapshot_cv_.wait(lock);
    }
    sweep_inflight_ = true;
    // From here on every exit path must clear the flag and notify, or
    // every future snapshot() would wait forever on the cv.
    const auto locked_at = Clock::now();
    try {
      if (config_.incremental_index) {
        apply_pending_deltas_locked(live);
        sweep_input = &index_.dataset();
      } else {
        std::vector<core::TupleView> views;
        views.reserve(live);
        for (const auto& shard : shards_) shard->collect_views(views);
        rebuilt = core::IndexedDataset(views);
        sweep_input = &rebuilt;
      }
    } catch (...) {
      sweep_inflight_ = false;  // lock still held here
      snapshot_cv_.notify_all();
      throw;
    }
    snap_stats_.locked_ns_last = elapsed_ns(locked_at);
    snap_stats_.locked_ns_total += snap_stats_.locked_ns_last;
    ++snap_stats_.sweeps;
    m.snapshot_locked_ns.observe(snap_stats_.locked_ns_last);
    m.snapshot_sweeps.add(1);
  }

  // Sweep phase, no lock held: ingest, live queries, and other snapshots
  // all proceed concurrently.
  SnapshotPtr result;
  try {
    if (after_collect_hook_) after_collect_hook_();
    obs::StageTimer sweep_span(m.snapshot_stage_sweep_ns);
    result = std::make_shared<const core::InferenceResult>(
        core::sweep_columns(*sweep_input, config_.engine));
  } catch (...) {
    const std::unique_lock lock(engine_mutex_);
    sweep_inflight_ = false;
    snapshot_cv_.notify_all();
    throw;
  }

  // Install phase: shard versions are monotone, so a larger stamp means a
  // newer cut — never replace the cache with an older concurrent sweep.
  {
    obs::StageTimer install_span(m.snapshot_stage_install_ns);
    const std::unique_lock lock(engine_mutex_);
    sweep_inflight_ = false;
    if (!cached_ || cached_version_ <= version) {
      cached_ = result;
      cached_version_ = version;
    }
  }
  snapshot_cv_.notify_all();
  return result;
}

CheckpointState StreamEngine::checkpoint_state() const {
  std::unique_lock lock(engine_mutex_);
  // Wait out any in-flight sweep: the collect phase below mutates the shared
  // index, which must stay immutable while an unlocked sweep reads it.
  while (sweep_inflight_) snapshot_cv_.wait(lock);

  CheckpointState out;
  if (config_.incremental_index) {
    std::size_t live = 0;
    for (const auto& shard : shards_) live += shard->size();
    // Drain the journals into the index so the exported image is current and
    // a restore starts with empty journals (same invariant as post-snapshot).
    apply_pending_deltas_locked(live);
    index_.serialize_image(out.index_image);
  }
  out.state.epoch = epoch_.load(std::memory_order_relaxed);
  out.state.evicted_total = evicted_total_.load(std::memory_order_relaxed);
  out.state.shards.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out.state.shards[i].next_key = shards_[i]->next_key();
    shards_[i]->export_tuples(out.state.shards[i].tuples);
  }
  return out;
}

void StreamEngine::restore_state(EngineState state, std::span<const std::uint8_t> index_image) {
  std::unique_lock lock(engine_mutex_);
  while (sweep_inflight_) snapshot_cv_.wait(lock);

  epoch_.store(state.epoch, std::memory_order_relaxed);
  evicted_total_.store(state.evicted_total, std::memory_order_relaxed);

  const bool exact = state.shards.size() == shards_.size();
  if (exact) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->restore_tuples(std::move(state.shards[i].tuples),
                                 state.shards[i].next_key);
    }
  } else {
    // The checkpoint was taken under a different --shards: re-partition by
    // peer hash and hand out fresh interleaved keys (the persisted index
    // image is keyed by the old layout and cannot be reused).
    std::vector<std::vector<StoredTuple>> buckets(shards_.size());
    for (auto& shard_state : state.shards) {
      for (auto& stored : shard_state.tuples) {
        buckets[shard_of(stored.tuple.peer())].push_back(std::move(stored));
      }
    }
    const auto stride = static_cast<std::uint64_t>(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::uint64_t key = i;
      for (auto& stored : buckets[i]) {
        stored.key = key;
        key += stride;
      }
      shards_[i]->restore_tuples(std::move(buckets[i]), key);
    }
  }

  cached_.reset();
  cached_version_ = 0;
  if (config_.incremental_index) {
    std::size_t live = 0;
    for (const auto& shard : shards_) live += shard->size();
    // Adopt the persisted image only when it provably matches the restored
    // shards; anything else falls back to one full rebuild at the next
    // snapshot (index_valid_ false), which is always correct.
    if (exact && !index_image.empty() && index_.load_image(index_image) &&
        index_.live_tuples() == live) {
      index_valid_ = true;
    } else {
      index_.reset();
      index_valid_ = false;
    }
  }
}

core::UsageCounters StreamEngine::live_counters(bgp::Asn asn) const {
  const std::shared_lock lock(engine_mutex_);
  return shards_[shard_of(asn)]->live_counters(asn);
}

std::size_t StreamEngine::live_tuples() const {
  const std::shared_lock lock(engine_mutex_);
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::uint64_t StreamEngine::evicted_total() const {
  return evicted_total_.load(std::memory_order_relaxed);
}

SnapshotStats StreamEngine::snapshot_stats() const {
  const std::shared_lock lock(engine_mutex_);
  SnapshotStats stats = snap_stats_;
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace bgpcu::stream
