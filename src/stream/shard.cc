#include "stream/shard.h"

#include <utility>

namespace bgpcu::stream {

IngestStats& IngestStats::operator+=(const IngestStats& other) noexcept {
  accepted += other.accepted;
  refreshed += other.refreshed;
  duplicates += other.duplicates;
  rejected += other.rejected;
  return *this;
}

IngestOutcome TupleShard::ingest(core::PathCommTuple&& tuple, Epoch epoch) {
  const auto view = core::TupleView::prepare(tuple);
  if (!view) return IngestOutcome::kRejected;

  std::vector<PreparedTuple> batch;
  batch.push_back({std::move(tuple), view->upper_mask});
  IngestStats stats;
  ingest_batch(std::move(batch), epoch, stats);
  if (stats.accepted) return IngestOutcome::kAccepted;
  if (stats.refreshed) return IngestOutcome::kRefreshed;
  return IngestOutcome::kDuplicate;
}

void TupleShard::ingest_batch(std::vector<PreparedTuple>&& batch, Epoch epoch,
                              IngestStats& stats) {
  const std::lock_guard lock(mutex_);
  bool mutated = false;
  for (auto& prepared : batch) {
    const bgp::Asn peer = prepared.tuple.peer();
    auto [it, inserted] = tuples_.try_emplace(std::move(prepared.tuple));
    if (!inserted) {
      if (it->second.last_seen == epoch) {
        ++stats.duplicates;
      } else {
        it->second.last_seen = epoch;
        ++stats.refreshed;
      }
      continue;
    }
    it->second.upper_mask = prepared.upper_mask;
    it->second.last_seen = epoch;
    auto& k = live_[peer];
    if ((prepared.upper_mask & 1u) != 0) {
      ++k.t;
    } else {
      ++k.s;
    }
    ++stats.accepted;
    mutated = true;
  }
  if (mutated) ++version_;
}

std::size_t TupleShard::evict_older_than(Epoch min_epoch) {
  const std::lock_guard lock(mutex_);
  std::size_t evicted = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.last_seen >= min_epoch) {
      ++it;
      continue;
    }
    const auto live_it = live_.find(it->first.peer());
    if (live_it != live_.end()) {
      auto& k = live_it->second;
      if ((it->second.upper_mask & 1u) != 0) {
        --k.t;
      } else {
        --k.s;
      }
      if ((k.t | k.s | k.f | k.c) == 0) live_.erase(live_it);
    }
    it = tuples_.erase(it);
    ++evicted;
  }
  if (evicted != 0) ++version_;
  return evicted;
}

void TupleShard::collect_views(std::vector<core::TupleView>& out) const {
  const std::lock_guard lock(mutex_);
  for (const auto& [tuple, meta] : tuples_) {
    out.push_back(core::TupleView{&tuple.path, meta.upper_mask});
  }
}

core::UsageCounters TupleShard::live_counters(bgp::Asn asn) const {
  const std::lock_guard lock(mutex_);
  const auto it = live_.find(asn);
  return it == live_.end() ? core::UsageCounters{} : it->second;
}

std::size_t TupleShard::size() const {
  const std::lock_guard lock(mutex_);
  return tuples_.size();
}

std::uint64_t TupleShard::version() const {
  const std::lock_guard lock(mutex_);
  return version_;
}

}  // namespace bgpcu::stream
