#include "stream/shard.h"

#include <utility>

#include "obs/wellknown.h"

namespace bgpcu::stream {

IngestStats& IngestStats::operator+=(const IngestStats& other) noexcept {
  accepted += other.accepted;
  refreshed += other.refreshed;
  duplicates += other.duplicates;
  rejected += other.rejected;
  return *this;
}

TupleShard::TupleShard(std::uint64_t first_key, std::uint64_t key_stride, bool journal,
                       std::size_t journal_cap)
    : next_key_(first_key), key_stride_(key_stride == 0 ? 1 : key_stride),
      lane_(static_cast<std::size_t>(first_key) % obs::Counter::kLanes),
      journal_enabled_(journal), journal_cap_(journal_cap) {}

IngestOutcome TupleShard::ingest(core::PathCommTuple&& tuple, Epoch epoch) {
  const auto view = core::TupleView::prepare(tuple);
  if (!view) return IngestOutcome::kRejected;

  std::vector<PreparedTuple> batch;
  batch.push_back({std::move(tuple), view->upper_mask});
  IngestStats stats;
  ingest_batch(std::move(batch), epoch, stats);
  if (stats.accepted) return IngestOutcome::kAccepted;
  if (stats.refreshed) return IngestOutcome::kRefreshed;
  return IngestOutcome::kDuplicate;
}

void TupleShard::journal_push(core::IndexDelta&& delta) {
  if (!journal_enabled_ || journal_overflowed_) return;
  if (delta.kind == core::IndexDelta::Kind::kRemove) {
    const auto pending = pending_adds_.find(delta.key);
    if (pending != pending_adds_.end()) {
      // The matching add has not been drained yet: the index would insert
      // the row only to tombstone it in the same patch. Cancel the add in
      // place and swallow this remove.
      cancelled_[pending->second] = true;
      pending_adds_.erase(pending);
      ++cancelled_in_journal_;
      ++journal_dedups_;
      obs::metrics().stream_journal_dedups.add(1, lane_);
      return;
    }
  }
  if (journal_.size() >= journal_cap_) {
    // Stop buffering and drop what we have: the next drain reports the
    // overflow and the engine rebuilds from export_live() instead.
    journal_overflowed_ = true;
    journal_.clear();
    journal_.shrink_to_fit();
    cancelled_.clear();
    cancelled_.shrink_to_fit();
    pending_adds_.clear();
    cancelled_in_journal_ = 0;
    obs::metrics().stream_journal_overflows.add(1, lane_);
    return;
  }
  if (delta.kind == core::IndexDelta::Kind::kAdd) {
    pending_adds_.emplace(delta.key, journal_.size());
  }
  journal_.push_back(std::move(delta));
  cancelled_.push_back(false);
  obs::metrics().stream_journal_deltas.add(1, lane_);
}

void TupleShard::ingest_batch(std::vector<PreparedTuple>&& batch, Epoch epoch,
                              IngestStats& stats) {
  const IngestStats before = stats;
  const std::lock_guard lock(mutex_);
  bool mutated = false;
  for (auto& prepared : batch) {
    const bgp::Asn peer = prepared.tuple.peer();
    auto [it, inserted] = tuples_.try_emplace(std::move(prepared.tuple));
    if (!inserted) {
      if (it->second.last_seen == epoch) {
        ++stats.duplicates;
      } else {
        it->second.last_seen = epoch;
        ++stats.refreshed;
      }
      continue;
    }
    it->second.upper_mask = prepared.upper_mask;
    it->second.last_seen = epoch;
    it->second.key = next_key_;
    next_key_ += key_stride_;
    if (journal_enabled_) {
      journal_push({core::IndexDelta::Kind::kAdd, it->second.key, prepared.upper_mask,
                    it->first.path});
    }
    auto& k = live_[peer];
    if ((prepared.upper_mask & 1u) != 0) {
      ++k.t;
    } else {
      ++k.s;
    }
    ++stats.accepted;
    mutated = true;
  }
  if (mutated) ++version_;

  auto& m = obs::metrics();
  m.stream_ingest_batches.add(1, lane_);
  if (const auto n = stats.accepted - before.accepted) m.stream_ingest_accepted.add(n, lane_);
  if (const auto n = stats.refreshed - before.refreshed) m.stream_ingest_refreshed.add(n, lane_);
  if (const auto n = stats.duplicates - before.duplicates) m.stream_ingest_duplicate.add(n, lane_);
}

std::size_t TupleShard::evict_older_than(Epoch min_epoch) {
  const std::lock_guard lock(mutex_);
  std::size_t evicted = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.last_seen >= min_epoch) {
      ++it;
      continue;
    }
    const auto live_it = live_.find(it->first.peer());
    if (live_it != live_.end()) {
      auto& k = live_it->second;
      if ((it->second.upper_mask & 1u) != 0) {
        --k.t;
      } else {
        --k.s;
      }
      if ((k.t | k.s | k.f | k.c) == 0) live_.erase(live_it);
    }
    if (journal_enabled_) {
      journal_push({core::IndexDelta::Kind::kRemove, it->second.key, 0, {}});
    }
    it = tuples_.erase(it);
    ++evicted;
  }
  if (evicted != 0) {
    ++version_;
    obs::metrics().stream_evicted.add(evicted, lane_);
  }
  return evicted;
}

void TupleShard::collect_views(std::vector<core::TupleView>& out) const {
  const std::lock_guard lock(mutex_);
  for (const auto& [tuple, meta] : tuples_) {
    out.push_back(core::TupleView{&tuple.path, meta.upper_mask});
  }
}

bool TupleShard::drain_deltas(std::vector<core::IndexDelta>& out) {
  const std::lock_guard lock(mutex_);
  pending_adds_.clear();
  if (journal_overflowed_) {
    journal_overflowed_ = false;
    journal_.clear();
    cancelled_.clear();
    cancelled_in_journal_ = 0;
    return false;
  }
  if (cancelled_in_journal_ == 0 && out.empty()) {
    out = std::move(journal_);
  } else {
    out.reserve(out.size() + journal_.size() - cancelled_in_journal_);
    for (std::size_t i = 0; i < journal_.size(); ++i) {
      if (!cancelled_[i]) out.push_back(std::move(journal_[i]));
    }
  }
  journal_.clear();
  cancelled_.clear();
  cancelled_in_journal_ = 0;
  return true;
}

void TupleShard::export_live(std::vector<core::IndexDelta>& out) const {
  const std::lock_guard lock(mutex_);
  out.reserve(out.size() + tuples_.size());
  for (const auto& [tuple, meta] : tuples_) {
    out.push_back({core::IndexDelta::Kind::kAdd, meta.key, meta.upper_mask, tuple.path});
  }
}

void TupleShard::export_tuples(std::vector<StoredTuple>& out) const {
  const std::lock_guard lock(mutex_);
  out.reserve(out.size() + tuples_.size());
  for (const auto& [tuple, meta] : tuples_) {
    out.push_back({tuple, meta.last_seen, meta.key});
  }
}

std::uint64_t TupleShard::next_key() const {
  const std::lock_guard lock(mutex_);
  return next_key_;
}

void TupleShard::restore_tuples(std::vector<StoredTuple> tuples, std::uint64_t next_key) {
  const std::lock_guard lock(mutex_);
  tuples_.clear();
  live_.clear();
  journal_.clear();
  cancelled_.clear();
  pending_adds_.clear();
  cancelled_in_journal_ = 0;
  journal_overflowed_ = false;
  next_key_ = next_key;
  for (auto& stored : tuples) {
    const auto view = core::TupleView::prepare(stored.tuple);
    if (!view) continue;  // Corrupt checkpoint row; the caller's live-count
                          // check against the index image catches the drop.
    const bgp::Asn peer = stored.tuple.peer();
    auto [it, inserted] = tuples_.try_emplace(std::move(stored.tuple));
    if (!inserted) continue;
    it->second.upper_mask = view->upper_mask;
    it->second.last_seen = stored.last_seen;
    it->second.key = stored.key;
    auto& k = live_[peer];
    if ((view->upper_mask & 1u) != 0) {
      ++k.t;
    } else {
      ++k.s;
    }
  }
  ++version_;
}

core::UsageCounters TupleShard::live_counters(bgp::Asn asn) const {
  const std::lock_guard lock(mutex_);
  const auto it = live_.find(asn);
  return it == live_.end() ? core::UsageCounters{} : it->second;
}

std::size_t TupleShard::size() const {
  const std::lock_guard lock(mutex_);
  return tuples_.size();
}

std::uint64_t TupleShard::version() const {
  const std::lock_guard lock(mutex_);
  return version_;
}

std::uint64_t TupleShard::journal_dedups() const {
  const std::lock_guard lock(mutex_);
  return journal_dedups_;
}

}  // namespace bgpcu::stream
