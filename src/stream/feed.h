// Directory feed: turns a directory that collectors (or the repo's own MRT
// writer) drop update/RIB dumps into, into PathCommTuple batches for the
// stream engine. Each poll scans for files not yet processed, decodes them
// through the standard extraction + sanitation pipeline, and returns one
// batch. Files are processed in lexicographic name order — collector
// archives name dumps by timestamp (updates.20210519.0845), so name order is
// arrival order.
#ifndef BGPCU_STREAM_FEED_H
#define BGPCU_STREAM_FEED_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "collector/extract.h"
#include "core/types.h"
#include "registry/registry.h"

namespace bgpcu::stream {

/// Result of one directory scan.
struct FeedPoll {
  core::Dataset batch;                  ///< Sanitized, deduplicated tuples.
  /// Paths whose newly read bytes contained at least one complete record,
  /// in order. A file with only a partial trailing record stays unlisted
  /// (and unconsumed) until the writer completes it.
  std::vector<std::string> files;
  std::vector<std::string> failed;      ///< Unreadable paths; retried next poll.
  collector::ExtractionStats extraction;
  collector::SanitationStats sanitation;

  [[nodiscard]] bool empty() const noexcept { return files.empty(); }
};

/// One file's durable read position: how many bytes of `path` have been
/// consumed into the engine. Recorded in the durable store's WAL so a
/// restarted feed resumes tailing without re-parsing consumed MRT bytes.
struct FeedMark {
  std::string path;
  std::uint64_t offset = 0;

  friend bool operator==(const FeedMark&, const FeedMark&) = default;
};

using FeedMarks = std::vector<FeedMark>;

/// Tails a directory of MRT dumps. Not thread-safe (one poller per feed).
class DirectoryFeed {
 public:
  /// `registry` must outlive the feed. Only files with `extension` (default:
  /// any) are considered; set e.g. ".mrt" to skip snapshots written next to
  /// the inputs. `settle_seconds` > 0 skips files modified within the last N
  /// seconds, protecting against collectors that write dumps in place
  /// instead of renaming them in (a partial file read once would otherwise
  /// be marked seen and its tail lost forever).
  DirectoryFeed(std::string directory, const registry::AllocationRegistry& registry,
                std::string extension = {}, std::uint32_t settle_seconds = 0);

  /// Scans for unseen files *and files that grew since the last poll* and
  /// extracts only their new bytes: the feed remembers a per-file read
  /// offset, so re-polling a growing MRT file parses just the appended
  /// records (incremental tailing). A record straddling the current end of
  /// file is left unconsumed and re-read once the writer completes it.
  /// Returns an empty poll when nothing new appeared. Throws
  /// std::runtime_error only when the directory itself cannot be scanned; an
  /// individual file that cannot be read (race with a writer, permissions)
  /// is reported in FeedPoll::failed, its offset untouched, and retried on
  /// the next poll. Decode errors inside a file are counted, not thrown.
  [[nodiscard]] FeedPoll poll();

  /// Number of distinct paths the feed has read bytes from.
  [[nodiscard]] std::size_t files_seen() const noexcept { return files_.size(); }

  /// Consumed offset per known path, sorted by path (deterministic output
  /// for the durable store's WAL records).
  [[nodiscard]] FeedMarks export_marks() const;

  /// Primes the feed with recovered offsets: each marked path starts as if
  /// `offset` bytes were already consumed, so the next poll reads only what
  /// the file grew past the mark. Identity fingerprints (inode, head) are
  /// left unrecorded; a file rotated while the process was down is detected
  /// by the usual size-shrink check and re-read from the start.
  void restore_marks(const FeedMarks& marks);

 private:
  /// Tail-reading bookkeeping for one path.
  struct FileState {
    std::uint64_t offset = 0;     ///< Bytes consumed (complete MRT records).
    std::uint64_t size_seen = 0;  ///< File size at the last read; a poll
                                  ///< re-reads only when the file outgrew it.
    std::uint64_t inode = 0;      ///< Identity at the last read: rotation
                                  ///< reusing the name (any new size) resets
                                  ///< the offset. 0 = not yet recorded.
    /// Modification time (file_time_type ticks) observed at the last scan.
    /// Gates the fingerprint comparison: a file whose size *and* mtime are
    /// unchanged since the last poll is skipped without opening it, so
    /// steady-state polls over fully consumed files stay stat-only.
    std::int64_t mtime_seen = 0;
    /// First bytes of the file as read at offset 0 (up to kHeadFingerprint).
    /// An in-place rewrite keeps the inode and may keep or grow the size —
    /// the only signal left is the content itself, so a head mismatch on a
    /// later poll restarts the file. Empty = not yet captured.
    std::string head;
  };

  /// How many leading bytes the rewrite fingerprint covers.
  static constexpr std::size_t kHeadFingerprint = 64;

  /// True when `path`'s current first bytes no longer match `state.head`
  /// (the file was rewritten in place). Unreadable files report false — the
  /// read phase deals with them.
  [[nodiscard]] static bool head_changed(const std::string& path, const FileState& state);

  std::string directory_;
  const registry::AllocationRegistry* registry_;
  std::string extension_;
  std::uint32_t settle_seconds_ = 0;
  std::unordered_map<std::string, FileState> files_;
};

}  // namespace bgpcu::stream

#endif  // BGPCU_STREAM_FEED_H
