#include "stream/feed.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "mrt/reader.h"

namespace bgpcu::stream {

namespace fs = std::filesystem;

DirectoryFeed::DirectoryFeed(std::string directory, const registry::AllocationRegistry& registry,
                             std::string extension, std::uint32_t settle_seconds)
    : directory_(std::move(directory)),
      registry_(&registry),
      extension_(std::move(extension)),
      settle_seconds_(settle_seconds) {}

FeedPoll DirectoryFeed::poll() {
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) throw std::runtime_error("cannot scan feed directory " + directory_ + ": " + ec.message());

  // error_code overloads throughout the scan: a writer renaming or deleting
  // a file between the iterator yielding it and us stat-ing it is a normal
  // race for a tailed directory, not a reason to kill the service.
  std::vector<std::string> fresh;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    const auto& path = it->path();
    if (!extension_.empty() && path.extension() != extension_) continue;
    // Quiescence guard against collectors that write in place (no atomic
    // rename): leave a file alone until it stopped changing for the settle
    // window, so a half-written dump's tail is not permanently missed.
    if (settle_seconds_ != 0) {
      const auto mtime = it->last_write_time(ec);
      if (ec) continue;
      const auto age = std::chrono::duration_cast<std::chrono::seconds>(
          fs::file_time_type::clock::now() - mtime);
      if (age.count() < static_cast<std::int64_t>(settle_seconds_)) continue;
    }
    auto text = path.string();
    if (!seen_.contains(text)) fresh.push_back(std::move(text));
  }
  std::sort(fresh.begin(), fresh.end());

  FeedPoll result;
  if (fresh.empty()) return result;

  collector::DatasetBuilder builder(*registry_);
  for (const auto& path : fresh) {
    // A file that vanished or is unreadable stays unmarked (retried next
    // poll) and must not abort the batch — earlier files' tuples already
    // live in this builder.
    try {
      builder.add_dump(mrt::load_file(path));
    } catch (const std::exception&) {
      result.failed.push_back(path);
      continue;
    }
    seen_.insert(path);
    result.files.push_back(path);
  }
  auto bundle = builder.finish();
  result.batch = std::move(bundle.dataset);
  result.extraction = bundle.extraction;
  result.sanitation = bundle.sanitation;
  return result;
}

}  // namespace bgpcu::stream
