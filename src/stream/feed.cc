#include "stream/feed.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>

#include "obs/trace.h"
#include "obs/wellknown.h"

namespace bgpcu::stream {

namespace fs = std::filesystem;

namespace {

/// Length of the prefix of `data` covered by complete MRT records (12-byte
/// common header + body). A trailing partial record is excluded, so a tail
/// read can stop at a clean frame boundary and resume when the writer
/// finishes the record.
std::size_t complete_record_prefix(std::span<const std::uint8_t> data) {
  constexpr std::size_t kHeaderSize = 12;
  std::size_t pos = 0;
  while (data.size() - pos >= kHeaderSize) {
    const std::uint32_t length = (static_cast<std::uint32_t>(data[pos + 8]) << 24) |
                                 (static_cast<std::uint32_t>(data[pos + 9]) << 16) |
                                 (static_cast<std::uint32_t>(data[pos + 10]) << 8) |
                                 static_cast<std::uint32_t>(data[pos + 11]);
    if (data.size() - pos - kHeaderSize < length) break;
    pos += kHeaderSize + length;
  }
  return pos;
}

/// The file's inode, or 0 when it cannot be stat'ed.
std::uint64_t inode_of(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_ino) : 0;
}

/// Reads `path` from byte `offset` to EOF. Throws std::runtime_error when
/// the file cannot be opened or a hard read error occurs. A *short* read is
/// tolerated, not fatal: the size is sampled before the bytes are pulled, so
/// a writer truncating or rotating the file in between legitimately hands us
/// fewer bytes than the sample promised — the returned data is whatever was
/// actually read, and the next poll re-examines the file.
std::vector<std::uint8_t> read_from_offset(const std::string& path, std::uint64_t offset) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open feed file: " + path);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size <= offset) return {};
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size - offset));
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (in.bad()) throw std::runtime_error("cannot read feed file: " + path);
  bytes.resize(static_cast<std::size_t>(in.gcount()));
  return bytes;
}

}  // namespace

bool DirectoryFeed::head_changed(const std::string& path, const FileState& state) {
  if (state.head.empty()) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string head(state.head.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  if (in.bad()) return false;
  head.resize(static_cast<std::size_t>(in.gcount()));
  return head != state.head;
}

DirectoryFeed::DirectoryFeed(std::string directory, const registry::AllocationRegistry& registry,
                             std::string extension, std::uint32_t settle_seconds)
    : directory_(std::move(directory)),
      registry_(&registry),
      extension_(std::move(extension)),
      settle_seconds_(settle_seconds) {}

FeedPoll DirectoryFeed::poll() {
  auto& m = obs::metrics();
  m.feed_polls.add(1);
  obs::StageTimer poll_span(m.feed_poll_ns);
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) throw std::runtime_error("cannot scan feed directory " + directory_ + ": " + ec.message());

  // error_code overloads throughout the scan: a writer renaming or deleting
  // a file between the iterator yielding it and us stat-ing it is a normal
  // race for a tailed directory, not a reason to kill the service.
  std::vector<std::pair<std::string, std::int64_t>> fresh;  // path, mtime ticks
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    const auto& path = it->path();
    if (!extension_.empty() && path.extension() != extension_) continue;
    const auto mtime = it->last_write_time(ec);
    // An unreadable mtime is recorded as 0 (never matches a real one), so
    // the next poll re-examines the file instead of trusting a stale stamp.
    const std::int64_t mtime_ticks =
        ec ? 0 : mtime.time_since_epoch().count();
    // Quiescence guard against collectors that write in place (no atomic
    // rename): leave a file alone until it stopped changing for the settle
    // window, so a half-written dump's tail is not permanently missed.
    if (settle_seconds_ != 0) {
      if (ec) continue;
      const auto age = std::chrono::duration_cast<std::chrono::seconds>(
          fs::file_time_type::clock::now() - mtime);
      if (age.count() < static_cast<std::int64_t>(settle_seconds_)) continue;
    }
    const auto size = it->file_size(ec);
    if (ec) continue;
    auto text = path.string();
    const auto state = files_.find(text);
    if (state != files_.end()) {
      // Rotation or rewrite reusing the name must start the file over,
      // whatever the replacement's size — tail-reading it from the stale
      // offset would misparse unrelated content. Three independent
      // detectors, because no single one covers every rewrite shape:
      // inode identity catches rename-rotation, the size check catches
      // shrinking in-place rewrites, and the first-bytes fingerprint
      // catches in-place rewrites that keep the inode *and* land on the
      // same or a larger size (O_TRUNC + rewrite on most filesystems).
      // The fingerprint read is gated on the mtime/size stamps, so a file
      // untouched since the last poll costs no open() to skip.
      const bool touched = mtime_ticks == 0 || mtime_ticks != state->second.mtime_seen ||
                           size != state->second.size_seen;
      const auto inode = inode_of(text);
      if ((state->second.inode != 0 && inode != 0 && inode != state->second.inode) ||
          size < state->second.size_seen ||
          (touched && head_changed(text, state->second))) {
        state->second = FileState{};
      } else if (size == state->second.size_seen) {
        // Touched but same size and same head (or untouched entirely):
        // nothing new to read. Remember the stamp so the fingerprint is
        // not re-verified every poll after a content-free touch.
        state->second.mtime_seen = mtime_ticks;
        continue;
      }
    }
    fresh.emplace_back(std::move(text), mtime_ticks);
  }
  std::sort(fresh.begin(), fresh.end());

  FeedPoll result;
  if (fresh.empty()) return result;

  collector::DatasetBuilder builder(*registry_);
  for (const auto& [path, mtime_ticks] : fresh) {
    // A file that vanished or is unreadable keeps its recorded offset
    // (retried next poll) and must not abort the batch — earlier files'
    // tuples already live in this builder.
    const auto known = files_.find(path);
    FileState state = known != files_.end() ? known->second : FileState{};
    std::size_t consumed = 0;
    try {
      state.inode = inode_of(path);
      // The scan-time stamp, deliberately: a write landing between the
      // scan's stat and this read moves the real mtime past the recorded
      // one, so the next poll re-examines the file rather than skipping it.
      state.mtime_seen = mtime_ticks;
      const bool from_start = state.offset == 0;
      const auto bytes = read_from_offset(path, state.offset);
      if (from_start && !bytes.empty()) {
        // Fingerprint the head while it is in hand: later polls compare
        // these bytes to detect in-place rewrites the size cannot show.
        state.head.assign(reinterpret_cast<const char*>(bytes.data()),
                          std::min<std::size_t>(kHeadFingerprint, bytes.size()));
      }
      consumed = complete_record_prefix(bytes);
      builder.add_dump(std::span(bytes.data(), consumed));
      state.offset += consumed;
      state.size_seen = state.offset + (bytes.size() - consumed);
      if (consumed > 0) m.feed_bytes_read.add(consumed);
    } catch (const std::exception&) {
      result.failed.push_back(path);
      m.feed_read_failures.add(1);
      continue;
    }
    files_[path] = state;
    // A poll that found only a partial trailing record consumed nothing:
    // don't report the file, or a data-less poll would count as an
    // ingesting epoch upstream (burning --window retention on no input).
    // The updated size_seen still prevents re-reading the tail every poll.
    if (consumed > 0) result.files.push_back(path);
  }
  auto bundle = builder.finish();
  result.batch = std::move(bundle.dataset);
  result.extraction = bundle.extraction;
  result.sanitation = bundle.sanitation;
  if (!result.files.empty()) m.feed_files_parsed.add(result.files.size());
  if (result.extraction.decode_errors != 0) {
    m.feed_decode_errors.add(result.extraction.decode_errors);
  }
  if (!result.batch.empty()) m.feed_tuples_extracted.add(result.batch.size());
  return result;
}

FeedMarks DirectoryFeed::export_marks() const {
  FeedMarks marks;
  marks.reserve(files_.size());
  for (const auto& [path, state] : files_) marks.push_back({path, state.offset});
  std::sort(marks.begin(), marks.end(),
            [](const FeedMark& a, const FeedMark& b) { return a.path < b.path; });
  return marks;
}

void DirectoryFeed::restore_marks(const FeedMarks& marks) {
  for (const auto& mark : marks) {
    FileState state;
    state.offset = mark.offset;
    // size_seen == offset means "no unconsumed tail": a file that has not
    // grown past the mark is skipped with a single stat, one that has is
    // read from the mark, and one that shrank below it is restarted (the
    // size < size_seen rotation check). Inode and head stay unrecorded; the
    // first real read re-fingerprints the file.
    state.size_seen = mark.offset;
    files_[mark.path] = state;
  }
}

}  // namespace bgpcu::stream
