#include "stream/feed.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>

namespace bgpcu::stream {

namespace fs = std::filesystem;

namespace {

/// Length of the prefix of `data` covered by complete MRT records (12-byte
/// common header + body). A trailing partial record is excluded, so a tail
/// read can stop at a clean frame boundary and resume when the writer
/// finishes the record.
std::size_t complete_record_prefix(std::span<const std::uint8_t> data) {
  constexpr std::size_t kHeaderSize = 12;
  std::size_t pos = 0;
  while (data.size() - pos >= kHeaderSize) {
    const std::uint32_t length = (static_cast<std::uint32_t>(data[pos + 8]) << 24) |
                                 (static_cast<std::uint32_t>(data[pos + 9]) << 16) |
                                 (static_cast<std::uint32_t>(data[pos + 10]) << 8) |
                                 static_cast<std::uint32_t>(data[pos + 11]);
    if (data.size() - pos - kHeaderSize < length) break;
    pos += kHeaderSize + length;
  }
  return pos;
}

/// The file's inode, or 0 when it cannot be stat'ed.
std::uint64_t inode_of(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_ino) : 0;
}

/// Reads `path` from byte `offset` to EOF. Throws std::runtime_error when
/// the file cannot be opened or read.
std::vector<std::uint8_t> read_from_offset(const std::string& path, std::uint64_t offset) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open feed file: " + path);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size <= offset) return {};
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size - offset));
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!in) throw std::runtime_error("cannot read feed file: " + path);
  return bytes;
}

}  // namespace

DirectoryFeed::DirectoryFeed(std::string directory, const registry::AllocationRegistry& registry,
                             std::string extension, std::uint32_t settle_seconds)
    : directory_(std::move(directory)),
      registry_(&registry),
      extension_(std::move(extension)),
      settle_seconds_(settle_seconds) {}

FeedPoll DirectoryFeed::poll() {
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) throw std::runtime_error("cannot scan feed directory " + directory_ + ": " + ec.message());

  // error_code overloads throughout the scan: a writer renaming or deleting
  // a file between the iterator yielding it and us stat-ing it is a normal
  // race for a tailed directory, not a reason to kill the service.
  std::vector<std::string> fresh;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    const auto& path = it->path();
    if (!extension_.empty() && path.extension() != extension_) continue;
    // Quiescence guard against collectors that write in place (no atomic
    // rename): leave a file alone until it stopped changing for the settle
    // window, so a half-written dump's tail is not permanently missed.
    if (settle_seconds_ != 0) {
      const auto mtime = it->last_write_time(ec);
      if (ec) continue;
      const auto age = std::chrono::duration_cast<std::chrono::seconds>(
          fs::file_time_type::clock::now() - mtime);
      if (age.count() < static_cast<std::int64_t>(settle_seconds_)) continue;
    }
    const auto size = it->file_size(ec);
    if (ec) continue;
    auto text = path.string();
    const auto state = files_.find(text);
    if (state != files_.end()) {
      // Rotation reusing the name must start the file over, whatever the
      // replacement's size — tail-reading it from the stale offset would
      // misparse unrelated content. Inode identity catches every case;
      // the size checks back it up for filesystems where an in-place
      // rewrite keeps the inode (a tailed file otherwise only grows).
      const auto inode = inode_of(text);
      if ((state->second.inode != 0 && inode != 0 && inode != state->second.inode) ||
          size < state->second.size_seen) {
        state->second = FileState{};
      } else if (size == state->second.size_seen) {
        continue;
      }
    }
    fresh.push_back(std::move(text));
  }
  std::sort(fresh.begin(), fresh.end());

  FeedPoll result;
  if (fresh.empty()) return result;

  collector::DatasetBuilder builder(*registry_);
  for (const auto& path : fresh) {
    // A file that vanished or is unreadable keeps its recorded offset
    // (retried next poll) and must not abort the batch — earlier files'
    // tuples already live in this builder.
    const auto known = files_.find(path);
    FileState state = known != files_.end() ? known->second : FileState{};
    std::size_t consumed = 0;
    try {
      state.inode = inode_of(path);
      const auto bytes = read_from_offset(path, state.offset);
      consumed = complete_record_prefix(bytes);
      builder.add_dump(std::span(bytes.data(), consumed));
      state.offset += consumed;
      state.size_seen = state.offset + (bytes.size() - consumed);
    } catch (const std::exception&) {
      result.failed.push_back(path);
      continue;
    }
    files_[path] = state;
    // A poll that found only a partial trailing record consumed nothing:
    // don't report the file, or a data-less poll would count as an
    // ingesting epoch upstream (burning --window retention on no input).
    // The updated size_seen still prevents re-reading the tail every poll.
    if (consumed > 0) result.files.push_back(path);
  }
  auto bundle = builder.finish();
  result.batch = std::move(bundle.dataset);
  result.extraction = bundle.extraction;
  result.sanitation = bundle.sanitation;
  return result;
}

}  // namespace bgpcu::stream
