// One ASN-hash shard of the stream engine's live tuple store. A shard owns
// every tuple whose collector peer hashes to it, keeps each tuple's
// precomputed TupleView mask and last-seen epoch, and maintains the
// *live* per-AS peer-column counters (t/s evidence at path index 1, where
// Cond1 is vacuous) incrementally on ingest/evict — so real-time queries
// never need a sweep. A shard also journals every accept/evict as a
// core::IndexDelta, which is what lets the engine patch its persistent
// IncrementalIndex under the snapshot lock instead of rebuilding it. Each
// shard carries its own mutex; cross-shard synchronization is the engine's
// job.
#ifndef BGPCU_STREAM_SHARD_H
#define BGPCU_STREAM_SHARD_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "core/engine.h"
#include "core/incremental.h"
#include "core/types.h"

namespace bgpcu::stream {

/// Monotone ingestion epoch; advanced by the engine, never by shards.
using Epoch = std::uint64_t;

/// What happened to one tuple offered to a shard.
enum class IngestOutcome : std::uint8_t {
  kAccepted,   ///< New unique tuple, now live.
  kRefreshed,  ///< Already live; last-seen epoch bumped.
  kDuplicate,  ///< Already live at this epoch; no state change.
  kRejected,   ///< Empty or overlong path; never stored.
};

/// Per-batch ingestion accounting.
struct IngestStats {
  std::uint64_t accepted = 0;    ///< New unique live tuples.
  std::uint64_t refreshed = 0;   ///< Live tuples re-observed (epoch bumped).
  std::uint64_t duplicates = 0;  ///< Already live at the current epoch.
  std::uint64_t rejected = 0;    ///< Empty/overlong paths, dropped.

  IngestStats& operator+=(const IngestStats& other) noexcept;
  friend bool operator==(const IngestStats&, const IngestStats&) = default;
};

/// A tuple with its ingest-time precomputation done: communities normalized,
/// upper mask derived. Built outside any lock so the critical section is
/// pure hash-table work.
struct PreparedTuple {
  core::PathCommTuple tuple;
  std::uint32_t upper_mask = 0;
};

/// One live tuple as exported for durable checkpoints: the raw tuple plus
/// the shard bookkeeping that must survive a restart (last-seen epoch for
/// window aging, the journal key so index row identities stay stable). The
/// upper mask is derived state and is recomputed on restore.
struct StoredTuple {
  core::PathCommTuple tuple;
  Epoch last_seen = 0;
  std::uint64_t key = 0;
};

/// A mutex-protected slice of the live tuple universe.
class TupleShard {
 public:
  /// Default journal-entry cap: more buffered deltas than this trigger
  /// overflow — journaling stops, the buffered deltas are dropped, and the
  /// next drain_deltas() reports the loss so the engine can rebuild from the
  /// live set instead. Bounds the memory a snapshot-starved engine can sink
  /// into delta buffers.
  static constexpr std::size_t kJournalCap = 1u << 20;

  /// Keys assigned to accepted tuples are `first_key + n * key_stride`: the
  /// engine gives shard i (i, shard_count) so keys are unique engine-wide.
  /// `journal` false (non-incremental engines) skips all delta buffering;
  /// `journal_cap` overrides the overflow threshold (tests shrink it).
  explicit TupleShard(std::uint64_t first_key = 0, std::uint64_t key_stride = 1,
                      bool journal = true, std::size_t journal_cap = kJournalCap);

  /// Offers one tuple (communities must already be normalized). Thread-safe.
  IngestOutcome ingest(core::PathCommTuple&& tuple, Epoch epoch);

  /// Offers a pre-partitioned batch under one lock acquisition; outcome
  /// counts accumulate into `stats`. Thread-safe.
  void ingest_batch(std::vector<PreparedTuple>&& batch, Epoch epoch, IngestStats& stats);

  /// Removes tuples last seen before `min_epoch`; returns how many died.
  std::size_t evict_older_than(Epoch min_epoch);

  /// Appends a view per live tuple to `out`. The views borrow the shard's
  /// stored tuples: the caller must hold off mutations (via the engine's
  /// snapshot lock) while using them.
  void collect_views(std::vector<core::TupleView>& out) const;

  /// Moves the journaled add/remove deltas since the last drain into `out`
  /// (in mutation order) and clears the journal. Add+remove pairs for the
  /// same key that both happened since the last drain cancel each other and
  /// are never emitted — the index would only have inserted and immediately
  /// tombstoned the row (keys are never reused, so the cancellation is
  /// exact). Returns false when the journal overflowed since the last drain:
  /// nothing is appended, the overflow state is cleared, and the caller must
  /// rebuild its index from export_live() of every shard. Thread-safe.
  [[nodiscard]] bool drain_deltas(std::vector<core::IndexDelta>& out);

  /// Lifetime count of add+remove pairs cancelled before a drain. Thread-safe.
  [[nodiscard]] std::uint64_t journal_dedups() const;

  /// Appends one add-delta per live tuple (the shard's authoritative state),
  /// keyed identically to the journal's entries. Used to (re)build an index
  /// from scratch after an overflow or apply failure. Thread-safe.
  void export_live(std::vector<core::IndexDelta>& out) const;

  /// Appends one StoredTuple per live tuple (checkpoint export). Thread-safe.
  void export_tuples(std::vector<StoredTuple>& out) const;

  /// Next key this shard would assign (checkpoint export). Thread-safe.
  [[nodiscard]] std::uint64_t next_key() const;

  /// Replaces the shard's contents with a checkpointed tuple set: masks are
  /// recomputed, live peer-column counters rebuilt, journal state cleared
  /// (recovery rebuilds the index separately). Tuples whose paths no longer
  /// pass preparation (corrupt state) are dropped. Thread-safe.
  void restore_tuples(std::vector<StoredTuple> tuples, std::uint64_t next_key);

  /// Live peer-column evidence for `asn` (t/s at path index 1); zero-valued
  /// when no live tuple has `asn` as its collector peer. Thread-safe.
  [[nodiscard]] core::UsageCounters live_counters(bgp::Asn asn) const;

  /// Number of live tuples. Thread-safe.
  [[nodiscard]] std::size_t size() const;

  /// Bumped on every accepting/evicting mutation; lets the engine detect
  /// "nothing changed since the last snapshot" without comparing stores.
  [[nodiscard]] std::uint64_t version() const;

 private:
  struct TupleMeta {
    std::uint32_t upper_mask = 0;
    Epoch last_seen = 0;
    std::uint64_t key = 0;  ///< Stable identity linking journal add/remove.
  };

  /// Appends to the journal unless journaling is off or overflowed; flips
  /// into the overflowed state at the cap. Caller holds mutex_.
  void journal_push(core::IndexDelta&& delta);

  mutable std::mutex mutex_;
  std::unordered_map<core::PathCommTuple, TupleMeta> tuples_;
  core::CounterMap live_;  ///< Peer-column t/s, one count per live tuple.
  std::uint64_t version_ = 0;
  std::uint64_t next_key_ = 0;
  std::uint64_t key_stride_ = 1;
  std::size_t lane_ = 0;  ///< Counter stripe; derived from first_key.
  bool journal_enabled_ = true;
  std::size_t journal_cap_ = kJournalCap;
  bool journal_overflowed_ = false;
  std::vector<core::IndexDelta> journal_;
  std::vector<bool> cancelled_;  ///< Parallel to journal_; true = skip on drain.
  /// Undrained add entries by key, so a remove can cancel its add in place.
  std::unordered_map<std::uint64_t, std::size_t> pending_adds_;
  std::size_t cancelled_in_journal_ = 0;
  std::uint64_t journal_dedups_ = 0;
};

}  // namespace bgpcu::stream

#endif  // BGPCU_STREAM_SHARD_H
