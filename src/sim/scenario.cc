#include "sim/scenario.h"

#include "topology/rng.h"

namespace bgpcu::sim {

using topology::NodeId;

const char* to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kAllTf:
      return "alltf";
    case ScenarioKind::kAllTc:
      return "alltc";
    case ScenarioKind::kRandom:
      return "random";
    case ScenarioKind::kRandomNoise:
      return "random+noise";
    case ScenarioKind::kRandomP:
      return "random-p";
    case ScenarioKind::kRandomPp:
      return "random-pp";
  }
  return "?";
}

RoleVector assign_roles(const topology::GeneratedTopology& topo, const ScenarioConfig& config) {
  const std::size_t n = topo.graph.node_count();
  RoleVector roles(n);
  topology::Rng rng(config.seed ^ 0x50CE7A21ull);

  switch (config.kind) {
    case ScenarioKind::kAllTf:
      for (auto& role : roles) role = Role{true, false, Selectivity::kNone};
      return roles;
    case ScenarioKind::kAllTc:
      for (auto& role : roles) role = Role{true, true, Selectivity::kNone};
      return roles;
    case ScenarioKind::kRandom:
    case ScenarioKind::kRandomNoise:
    case ScenarioKind::kRandomP:
    case ScenarioKind::kRandomPp:
      break;
  }

  // Uniform tf/tc/sf/sc draw, identical across the random-based kinds for a
  // given seed (the selectivity pass below consumes a forked stream so the
  // base roles stay aligned).
  for (auto& role : roles) {
    const auto draw = rng.below(4);
    role.tagger = (draw & 1) != 0;
    role.cleaner = (draw & 2) != 0;
    role.selectivity = Selectivity::kNone;
  }

  if (config.kind == ScenarioKind::kRandomP || config.kind == ScenarioKind::kRandomPp) {
    topology::Rng sel_rng = rng.fork(0x5E1Eull);
    const Selectivity mode = config.kind == ScenarioKind::kRandomP
                                 ? Selectivity::kSkipProvider
                                 : Selectivity::kSkipProviderPeer;
    for (auto& role : roles) {
      if (role.tagger && sel_rng.chance(config.selective_share)) role.selectivity = mode;
    }
  }
  return roles;
}

core::Dataset generate_dataset(const topology::GeneratedTopology& topo,
                               const PathSubstrate& substrate, const RoleVector& roles,
                               const OutputConfig& config, std::uint64_t seed,
                               std::uint32_t observations) {
  if (observations == 0) observations = 1;
  // Without stochastic elements every observation of a path is identical;
  // skip the redundant draws instead of deduplicating them away.
  const bool stochastic = config.noise.enabled || config.pollution.private_prob > 0 ||
                          config.pollution.stray_prob > 0;
  if (!stochastic) observations = 1;

  core::Dataset dataset;
  dataset.reserve(substrate.paths.size() * observations);
  topology::Rng rng(seed ^ 0xDA7A5E7ull);
  const std::vector<bool> noisy = mark_noisy(topo.graph.node_count(), config.noise, seed);

  for (const auto& path : substrate.paths) {
    std::vector<bgp::Asn> asns;
    asns.reserve(path.size());
    for (const NodeId node : path) asns.push_back(topo.graph.asn_of(node));
    for (std::uint32_t obs = 0; obs < observations; ++obs) {
      core::PathCommTuple tuple;
      tuple.path = asns;
      tuple.comms = compute_output(topo, path, roles, noisy, config, rng);
      dataset.push_back(std::move(tuple));
    }
  }
  core::deduplicate(dataset);
  return dataset;
}

void compute_visibility(const topology::GeneratedTopology& topo, const PathSubstrate& substrate,
                        const RoleVector& roles, std::vector<bool>& tagging_visible,
                        std::vector<bool>& forwarding_visible) {
  const std::size_t n = topo.graph.node_count();
  tagging_visible.assign(n, false);
  forwarding_visible.assign(n, false);

  for (const auto& path : substrate.paths) {
    bool upstream_all_forward = true;  // positions 0 .. i-1 are all non-cleaner
    for (std::size_t i = 0; i < path.size() && upstream_all_forward; ++i) {
      const NodeId node = path[i];
      tagging_visible[node] = true;
      // Forwarding needs a downstream illuminator: the nearest tagger that
      // actually tags on this path segment, with no cleaner strictly before
      // it (a tagger-cleaner illuminates with its own tags, then blocks).
      if (i + 1 < path.size() && !forwarding_visible[node]) {
        for (std::size_t j = i + 1; j < path.size(); ++j) {
          const NodeId cand = path[j];
          if (roles[cand].tagger &&
              tags_towards(topo.graph, roles[cand], cand, path[j - 1], false)) {
            forwarding_visible[node] = true;
            break;
          }
          if (roles[cand].cleaner) break;
        }
      }
      if (roles[node].cleaner) upstream_all_forward = false;
    }
  }
}

GroundTruth build_scenario(const topology::GeneratedTopology& topo,
                           const PathSubstrate& substrate, const ScenarioConfig& config) {
  GroundTruth out;
  out.roles = assign_roles(topo, config);

  OutputConfig output;
  output.noise = config.noise;
  if (config.kind == ScenarioKind::kRandomNoise) output.noise.enabled = true;

  out.dataset = generate_dataset(topo, substrate, out.roles, output, config.seed,
                                 config.observations_per_path);
  out.present = substrate.present_flags(topo.graph.node_count());
  out.leaf = substrate.leaf_flags(topo.graph.node_count());

  std::vector<bool> tagging_visible, forwarding_visible;
  compute_visibility(topo, substrate, out.roles, tagging_visible, forwarding_visible);
  const std::size_t n = topo.graph.node_count();
  out.tagging_hidden.assign(n, false);
  out.forwarding_hidden.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    out.tagging_hidden[i] = out.present[i] && !tagging_visible[i];
    out.forwarding_hidden[i] = out.present[i] && !out.leaf[i] && !forwarding_visible[i];
  }
  return out;
}

}  // namespace bgpcu::sim
