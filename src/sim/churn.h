// Daily churn model for the stability analysis (Fig. 3): each successive day
// the collectors observe most — but not all — of the tuple universe (RIB
// snapshots plus whatever re-announced that day), and a few origins suffer
// outages that hide all their paths. Cumulative per-day unions reproduce the
// paper's incremental-input experiment.
#ifndef BGPCU_SIM_CHURN_H
#define BGPCU_SIM_CHURN_H

#include <cstdint>

#include "core/types.h"

namespace bgpcu::sim {

/// Day-to-day observation dynamics.
struct ChurnConfig {
  double daily_visibility = 0.92;  ///< P(tuple observed on a given day).
  double outage_prob = 0.02;       ///< P(origin fully absent on a given day).
  std::uint64_t seed = 1;
};

/// The subset of `base` visible on `day` (0-based). Day draws are
/// independent and deterministic per (seed, day).
[[nodiscard]] core::Dataset day_dataset(const core::Dataset& base, const ChurnConfig& config,
                                        std::uint32_t day);

/// Union of `a` and `b`, deduplicated — the cumulative input for day k.
[[nodiscard]] core::Dataset merge_datasets(core::Dataset a, const core::Dataset& b);

/// The first `days` daily observation batches in order — the churn-driven
/// input stream the streaming engine consumes (one batch per epoch).
/// Equivalent to calling day_dataset for day = 0..days-1.
[[nodiscard]] std::vector<core::Dataset> day_batches(const core::Dataset& base,
                                                     const ChurnConfig& config,
                                                     std::uint32_t days);

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_CHURN_H
