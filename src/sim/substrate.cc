#include "sim/substrate.h"

#include <algorithm>

#include "topology/rng.h"

namespace bgpcu::sim {

using topology::NodeId;

std::vector<bool> PathSubstrate::present_flags(std::size_t node_count) const {
  std::vector<bool> present(node_count, false);
  for (const auto& path : paths) {
    for (const NodeId node : path) present[node] = true;
  }
  return present;
}

std::vector<bool> PathSubstrate::leaf_flags(std::size_t node_count) const {
  std::vector<bool> leaf = present_flags(node_count);
  // Start from "present"; anything seen at a transit (non-origin) position
  // is not a leaf. Absent nodes are not leaves either.
  for (const auto& path : paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) leaf[path[i]] = false;
  }
  return leaf;
}

std::vector<NodeId> select_collector_peers(const topology::GeneratedTopology& topo,
                                           std::size_t count, std::uint64_t seed) {
  topology::Rng rng(seed ^ 0xC011EC70ull);
  std::vector<NodeId> peers;
  // Tier-1s and large transits peer with collectors with high probability;
  // fill the remainder with smaller networks, like the real peer mix.
  std::vector<NodeId> pool_big, pool_rest;
  for (NodeId node = 0; node < topo.graph.node_count(); ++node) {
    switch (topo.tier_of(node)) {
      case topology::Tier::kTier1:
      case topology::Tier::kLargeTransit:
        pool_big.push_back(node);
        break;
      case topology::Tier::kSmallTransit:
        pool_rest.push_back(node);
        break;
      case topology::Tier::kLeaf:
        if (rng.chance(0.02)) pool_rest.push_back(node);  // a few stub peers
        break;
    }
  }
  const std::size_t from_big = std::min(pool_big.size(), count * 55 / 100);
  for (std::size_t i = 0; i < from_big; ++i) {
    peers.push_back(pool_big[rng.below(pool_big.size())]);
  }
  while (peers.size() < count && !pool_rest.empty()) {
    peers.push_back(pool_rest[rng.below(pool_rest.size())]);
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

PathSubstrate build_substrate(const topology::GeneratedTopology& topo,
                              std::vector<topology::NodeId> peers,
                              std::uint32_t origin_stride) {
  PathSubstrate out;
  out.peers = std::move(peers);
  topology::RouteComputer computer(topo.graph);
  const auto n = static_cast<NodeId>(topo.graph.node_count());
  if (origin_stride == 0) origin_stride = 1;

  for (NodeId origin = 0; origin < n; origin += origin_stride) {
    computer.compute(origin);
    for (const NodeId peer : out.peers) {
      if (!computer.has_route(peer)) continue;
      auto path = computer.path_from(peer);
      if (path.size() < 1) continue;
      out.paths.push_back(std::move(path));
    }
  }
  std::sort(out.paths.begin(), out.paths.end());
  out.paths.erase(std::unique(out.paths.begin(), out.paths.end()), out.paths.end());
  return out;
}

}  // namespace bgpcu::sim
