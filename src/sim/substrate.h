// Path substrate generation: the set of AS paths observed by collector
// peers, computed with valley-free routing over the generated topology.
// This is this repo's stand-in for "all available AS paths from RIPE,
// RouteViews and Isolario" that the paper uses as the simulation substrate
// (§6), and it also feeds the collector MRT emission.
#ifndef BGPCU_SIM_SUBSTRATE_H
#define BGPCU_SIM_SUBSTRATE_H

#include <cstdint>
#include <vector>

#include "topology/generator.h"
#include "topology/routing.h"

namespace bgpcu::sim {

/// The observed path set: unique node-id paths A1..An (A1 = collector peer,
/// An = origin) plus the peer set that produced them.
struct PathSubstrate {
  std::vector<std::vector<topology::NodeId>> paths;
  std::vector<topology::NodeId> peers;

  /// Per-node presence/leaf flags derived from the path set (§3.1: a leaf AS
  /// never appears at a non-origin position).
  [[nodiscard]] std::vector<bool> present_flags(std::size_t node_count) const;
  [[nodiscard]] std::vector<bool> leaf_flags(std::size_t node_count) const;
};

/// Selects `count` collector-peer ASes, biased toward large (transit) ASes
/// like real collector peers; always includes some tier-1s.
[[nodiscard]] std::vector<topology::NodeId> select_collector_peers(
    const topology::GeneratedTopology& topo, std::size_t count, std::uint64_t seed);

/// Computes the unique best paths from every origin to every peer.
/// `origin_stride` > 1 subsamples origins (every k-th AS originates) to
/// bound dataset size at large scales.
[[nodiscard]] PathSubstrate build_substrate(const topology::GeneratedTopology& topo,
                                            std::vector<topology::NodeId> peers,
                                            std::uint32_t origin_stride = 1);

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_SUBSTRATE_H
