#include "sim/churn.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "topology/rng.h"

namespace bgpcu::sim {

core::Dataset day_dataset(const core::Dataset& base, const ChurnConfig& config,
                          std::uint32_t day) {
  topology::Rng rng(config.seed ^ (0xDA11ull * (day + 1)));

  // Draw the day's origin outages first so every tuple of an out origin
  // disappears coherently. Origins are visited in sorted order so the draw
  // sequence is deterministic.
  std::vector<bgp::Asn> seen_origins;
  seen_origins.reserve(base.size());
  for (const auto& tuple : base) seen_origins.push_back(tuple.origin());
  std::sort(seen_origins.begin(), seen_origins.end());
  seen_origins.erase(std::unique(seen_origins.begin(), seen_origins.end()), seen_origins.end());
  std::unordered_set<bgp::Asn> out_origins;
  for (const auto origin : seen_origins) {
    if (rng.chance(config.outage_prob)) out_origins.insert(origin);
  }

  core::Dataset out;
  out.reserve(base.size());
  for (const auto& tuple : base) {
    if (out_origins.contains(tuple.origin())) continue;
    if (!rng.chance(config.daily_visibility)) continue;
    out.push_back(tuple);
  }
  return out;
}

core::Dataset merge_datasets(core::Dataset a, const core::Dataset& b) {
  a.insert(a.end(), b.begin(), b.end());
  core::deduplicate(a);
  return a;
}

std::vector<core::Dataset> day_batches(const core::Dataset& base, const ChurnConfig& config,
                                       std::uint32_t days) {
  std::vector<core::Dataset> batches;
  batches.reserve(days);
  for (std::uint32_t day = 0; day < days; ++day) {
    batches.push_back(day_dataset(base, config, day));
  }
  return batches;
}

}  // namespace bgpcu::sim
