// Ground-truth community-usage roles assigned to simulated ASes, following
// the paper's mental model (§3.3): a tagging behavior (tagger/silent), a
// forwarding behavior (forward/cleaner), and — for §6.2 — a tagging
// selectivity based on the business relationship to the receiving neighbor.
#ifndef BGPCU_SIM_ROLES_H
#define BGPCU_SIM_ROLES_H

#include <cstdint>
#include <string>
#include <vector>

#include "topology/graph.h"

namespace bgpcu::sim {

/// Selective-tagging modes (§6.2, §5.4). Selectivity never applies to the
/// collector session: even selective taggers tag toward collectors in the
/// paper's random-p / random-pp scenarios. kCollectorOnly is the §5.4
/// worst-case (tags only toward the collector).
enum class Selectivity : std::uint8_t {
  kNone,              ///< Tags on every external session.
  kSkipProvider,      ///< random-p: no tags on provider links.
  kSkipProviderPeer,  ///< random-pp: tags only to customers (and collectors).
  kCollectorOnly,     ///< Tags only on collector sessions.
};

/// Ground-truth role of one AS.
struct Role {
  bool tagger = false;   ///< Adds own communities (subject to selectivity).
  bool cleaner = false;  ///< Removes communities set by others.
  Selectivity selectivity = Selectivity::kNone;

  [[nodiscard]] bool is_selective() const noexcept {
    return tagger && selectivity != Selectivity::kNone;
  }

  /// Two-character role code as the paper writes it: tf / tc / sf / sc.
  [[nodiscard]] std::string code() const {
    return std::string{tagger ? 't' : 's', cleaner ? 'c' : 'f'};
  }
};

/// Role table indexed by topology NodeId.
using RoleVector = std::vector<Role>;

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_ROLES_H
