// PEERING-testbed experiment simulation (§7.4): a testbed AS (AS 47065)
// announces a /24 through several PoP upstreams, attaching a unique pair of
// communities per PoP, and we observe which announcements reach the
// collector peers with the communities intact. Validation then checks the
// observed presence/absence of our communities against the cleaners the
// inference identified on each path.
#ifndef BGPCU_SIM_PEERING_H
#define BGPCU_SIM_PEERING_H

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/types.h"
#include "sim/roles.h"
#include "sim/substrate.h"
#include "topology/generator.h"

namespace bgpcu::sim {

/// Experiment parameters.
struct PeeringConfig {
  bgp::Asn testbed_asn = 47065;  ///< PEERING's ASN.
  std::uint32_t num_pops = 12;   ///< Distinct first-hop upstreams.
  std::uint64_t seed = 1;
};

/// The announcements observed for the testbed prefix.
struct PeeringObservation {
  core::Dataset tuples;             ///< Unique (path, comm) for our /24.
  std::vector<bgp::Asn> pop_asns;   ///< The PoP upstream ASNs used.
};

/// Validation outcome in the shape of the paper's Table 4.
struct PeeringValidation {
  // Tuples whose community set contains our communities:
  std::uint64_t with_comms = 0;
  std::uint64_t with_comms_cleaner = 0;    ///< ≥1 inferred cleaner (contradiction).
  std::uint64_t with_comms_undecided = 0;  ///< No cleaner but ≥1 undecided fwd.
  // Tuples without our communities:
  std::uint64_t without_comms = 0;
  std::uint64_t without_comms_cleaner = 0;   ///< ≥1 inferred cleaner (consistent).
  std::uint64_t without_comms_undecided = 0; ///< No cleaner but ≥1 undecided fwd.
};

/// Announces the testbed prefix via `num_pops` transit upstreams over a copy
/// of `topo` extended with the testbed AS, propagates with `roles` (the
/// testbed itself tags its per-PoP communities), and returns the tuples seen
/// by `peers`.
[[nodiscard]] PeeringObservation run_peering_experiment(
    const topology::GeneratedTopology& topo, const std::vector<topology::NodeId>& peers,
    const RoleVector& roles, const PeeringConfig& config);

/// Scores an observation against an inference result (Table 4 semantics):
/// paths carrying our communities must contain no inferred cleaner; paths
/// missing them should contain at least one.
[[nodiscard]] PeeringValidation validate_observation(const PeeringObservation& obs,
                                                     const core::InferenceResult& inference,
                                                     bgp::Asn testbed_asn);

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_PEERING_H
