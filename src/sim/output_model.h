// Implements the paper's formal model (§3.3.2): given ground-truth roles and
// an AS path, computes the community set output(A1) that the collector peer
// exports — output(A) = tagging(A) ∪ forwarding(A, input(A)) evaluated from
// the origin toward the peer — including the §6.1 noise sources and the
// wild-mode stray/private community pollution.
#ifndef BGPCU_SIM_OUTPUT_MODEL_H
#define BGPCU_SIM_OUTPUT_MODEL_H

#include <cstdint>
#include <vector>

#include "bgp/community.h"
#include "sim/roles.h"
#include "topology/generator.h"
#include "topology/rng.h"

namespace bgpcu::sim {

/// §6.1 noise configuration. Noise source 1 ("action"): a *noisy* AS
/// attaches a community carrying its upstream neighbor's ASN, simulating an
/// action community; it propagates subject to cleaning. Noise source 2
/// ("origin"): a community carrying the originator's ASN is appended to the
/// observed output.
struct NoiseConfig {
  bool enabled = false;
  double noisy_as_fraction = 0.5;  ///< Share of ASes that ever emit noise 1.
  double action_prob = 0.05;       ///< Per (tuple, noisy-AS occurrence).
  double origin_prob = 0.05;       ///< Per tuple.
};

/// Wild-mode pollution that exercises the stray/private source groups
/// (§3.2): blackhole-style private communities added in-path and
/// route-server-style stray communities appended at the peer.
struct PollutionConfig {
  double private_prob = 0.0;  ///< Per tuple: add a private-admin community.
  double stray_prob = 0.0;    ///< Per tuple: append an off-path-admin community.
};

/// Full output-model configuration.
struct OutputConfig {
  NoiseConfig noise;
  PollutionConfig pollution;
};

/// Marks which ASes are "noisy" for noise source 1; deterministic per seed.
[[nodiscard]] std::vector<bool> mark_noisy(std::size_t node_count, const NoiseConfig& noise,
                                           std::uint64_t seed);

/// The community vocabulary of one tagger: deterministic per ASN, regular
/// values for 16-bit admins and large values for 32-bit admins (§3.2), with
/// an ingress-dependent extra value keyed on the path's peer AS (geo-style
/// informational tagging).
[[nodiscard]] bgp::CommunitySet tagger_vocabulary(bgp::Asn asn, bgp::Asn peer_asn);

/// True iff, per the mental model, `node` adds its own communities when
/// exporting to `receiver` (`to_collector` for the collector session).
[[nodiscard]] bool tags_towards(const topology::AsGraph& graph, const Role& role,
                                topology::NodeId node, topology::NodeId receiver,
                                bool to_collector);

/// Computes output(A1) for `path` (path[0] = collector peer .. path.back() =
/// origin) under `roles`. `noisy` may be empty when noise is disabled;
/// `rng` drives the stochastic noise/pollution draws.
///
/// When `origin_override` is non-null, the origin exports exactly that
/// community set instead of its role-derived vocabulary (used by the
/// PEERING-testbed experiment, whose origin tags per-PoP community pairs).
[[nodiscard]] bgp::CommunitySet compute_output(const topology::GeneratedTopology& topo,
                                               const std::vector<topology::NodeId>& path,
                                               const RoleVector& roles,
                                               const std::vector<bool>& noisy,
                                               const OutputConfig& config, topology::Rng& rng,
                                               const bgp::CommunitySet* origin_override = nullptr);

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_OUTPUT_MODEL_H
