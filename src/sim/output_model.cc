#include "sim/output_model.h"

#include <algorithm>

namespace bgpcu::sim {

namespace {

using topology::NodeId;

std::uint64_t mix(std::uint64_t v) {
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
  return v ^ (v >> 31);
}

// Builds one community with administrator `admin`; the variant follows the
// administrator's ASN width (32-bit ASes cannot use regular communities).
bgp::CommunityValue make_community(bgp::Asn admin, std::uint32_t value, bool force_large) {
  if (force_large || bgp::is_32bit_asn(admin)) {
    return bgp::CommunityValue::large(admin, value, value % 50);
  }
  return bgp::CommunityValue::regular(static_cast<std::uint16_t>(admin),
                                      static_cast<std::uint16_t>(value % 0x10000));
}

}  // namespace

std::vector<bool> mark_noisy(std::size_t node_count, const NoiseConfig& noise,
                             std::uint64_t seed) {
  std::vector<bool> noisy(node_count, false);
  if (!noise.enabled) return noisy;
  topology::Rng rng(seed ^ 0xA5A5A5A5ull);
  for (std::size_t i = 0; i < node_count; ++i) noisy[i] = rng.chance(noise.noisy_as_fraction);
  return noisy;
}

bgp::CommunitySet tagger_vocabulary(bgp::Asn asn, bgp::Asn peer_asn) {
  bgp::CommunitySet out;
  const std::uint64_t h = mix(asn);
  // Some established 16-bit networks also deploy large communities.
  const bool also_large = (h >> 16) % 100 < 15;

  out.push_back(make_community(asn, 100 + static_cast<std::uint32_t>(h % 400), false));
  if (h % 2 == 0) {
    out.push_back(
        make_community(asn, 500 + static_cast<std::uint32_t>((h >> 8) % 400), false));
  }
  if (also_large && bgp::is_16bit_asn(asn)) {
    out.push_back(make_community(asn, 100 + static_cast<std::uint32_t>(h % 400), true));
  }
  // Ingress-dependent informational value (e.g. "learned at location X"),
  // keyed on the collector peer so different vantage points see different
  // low-order values — the upper field, which the inference uses, is stable.
  const std::uint64_t hp = mix(asn ^ (static_cast<std::uint64_t>(peer_asn) << 20));
  out.push_back(make_community(asn, 1000 + static_cast<std::uint32_t>(hp % 200), false));
  return out;
}

bool tags_towards(const topology::AsGraph& graph, const Role& role, topology::NodeId node,
                  topology::NodeId receiver, bool to_collector) {
  if (!role.tagger) return false;
  // Every selectivity mode in the paper tags toward the collector session.
  if (to_collector) return true;
  switch (role.selectivity) {
    case Selectivity::kNone:
      return true;
    case Selectivity::kCollectorOnly:
      return false;  // non-collector receiver
    case Selectivity::kSkipProvider: {
      const auto rel = graph.relationship(node, receiver);
      return !(rel && *rel == topology::Relationship::kProvider);
    }
    case Selectivity::kSkipProviderPeer: {
      const auto rel = graph.relationship(node, receiver);
      return rel && *rel == topology::Relationship::kCustomer;
    }
  }
  return true;
}

bgp::CommunitySet compute_output(const topology::GeneratedTopology& topo,
                                 const std::vector<topology::NodeId>& path,
                                 const RoleVector& roles, const std::vector<bool>& noisy,
                                 const OutputConfig& config, topology::Rng& rng,
                                 const bgp::CommunitySet* origin_override) {
  bgp::CommunitySet comms;
  if (path.empty()) return comms;
  const auto& graph = topo.graph;
  const bgp::Asn peer_asn = graph.asn_of(path.front());

  for (std::size_t x = path.size(); x >= 1; --x) {
    const NodeId node = path[x - 1];
    const Role& role = roles[node];
    const bool to_collector = (x == 1);
    const NodeId receiver = to_collector ? node : path[x - 2];

    // forwarding(A, input): a cleaner drops everything received downstream.
    if (role.cleaner) comms.clear();

    // tagging(A): own communities, subject to selectivity toward receiver.
    if (origin_override != nullptr && x == path.size()) {
      comms.insert(comms.end(), origin_override->begin(), origin_override->end());
    } else if (tags_towards(graph, role, node, receiver, to_collector)) {
      const auto vocab = tagger_vocabulary(graph.asn_of(node), peer_asn);
      comms.insert(comms.end(), vocab.begin(), vocab.end());
    }

    // Noise source 1: an action community carrying the *upstream* neighbor's
    // ASN, attached by a noisy AS; it rides the normal propagation (and is
    // cleaned by any upstream cleaner).
    if (config.noise.enabled && !to_collector && !noisy.empty() && noisy[node] &&
        rng.chance(config.noise.action_prob)) {
      const bgp::Asn upstream = graph.asn_of(path[x - 2]);
      comms.push_back(make_community(upstream, 3000 + static_cast<std::uint32_t>(rng.below(64)),
                                     false));
    }

    // Wild pollution: private-administrator community (e.g. internal or
    // RTBH-style) attached in-path; cleaned normally.
    if (config.pollution.private_prob > 0 && rng.chance(config.pollution.private_prob)) {
      const bgp::Asn priv = 64512 + static_cast<bgp::Asn>(rng.below(1023));
      comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(priv), 666));
    }
  }

  // Noise source 2: a community carrying the originator's ASN appended to
  // the observed output (tests the forwarding inference, §6.1).
  if (config.noise.enabled && rng.chance(config.noise.origin_prob)) {
    const bgp::Asn origin_asn = graph.asn_of(path.back());
    comms.push_back(
        make_community(origin_asn, 4000 + static_cast<std::uint32_t>(rng.below(32)), false));
  }

  // Wild pollution: stray community appended at the collector ingress (the
  // route-server pattern: an administrator that never shows in the path).
  if (config.pollution.stray_prob > 0 && rng.chance(config.pollution.stray_prob)) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const NodeId pick = static_cast<NodeId>(rng.below(graph.node_count()));
      const bgp::Asn admin = graph.asn_of(pick);
      if (std::find(path.begin(), path.end(), pick) == path.end()) {
        comms.push_back(make_community(admin, 7000 + static_cast<std::uint32_t>(rng.below(16)),
                                       false));
        break;
      }
    }
  }

  bgp::normalize(comms);
  return comms;
}

}  // namespace bgpcu::sim
