// "Wild" role model: a realistic (non-uniform) assignment of community-usage
// roles used to stand in for the real Internet in the §7 analyses. The
// distribution follows the paper's findings: taggers are predominantly
// large transit networks, the edge is mostly silent, cleaners appear across
// all sizes, and a share of taggers behaves selectively.
#ifndef BGPCU_SIM_WILD_H
#define BGPCU_SIM_WILD_H

#include <array>
#include <cstdint>

#include "sim/output_model.h"
#include "sim/roles.h"
#include "topology/generator.h"

namespace bgpcu::sim {

/// Wild role-model parameters; arrays are indexed by topology::Tier.
struct WildParams {
  std::uint64_t seed = 1;
  /// P(tagger) per tier — §7.3: tagger ASes typically have large cones.
  std::array<double, 4> p_tagger{0.45, 0.28, 0.10, 0.01};
  /// P(cleaner) per tier — §7.3: cleaners are common across all sizes, and
  /// Table 3 finds more cleaners than forwarders among classified ASes
  /// (417 vs 271), so the transit core leans cleaner.
  std::array<double, 4> p_cleaner{0.50, 0.50, 0.45, 0.45};
  /// Share of taggers that tag selectively (drives undecided inferences).
  double selective_share = 0.35;
  /// Among selective taggers: P(skip provider), P(skip provider+peer); the
  /// remainder tags only toward collectors (the §5.4 worst case, which is
  /// also the main source of undecided tagging at collector peers).
  double sel_skip_provider = 0.45;
  double sel_skip_provider_peer = 0.25;
  /// Community pollution, exercising stray/private source groups (Fig. 5).
  PollutionConfig pollution{0.008, 0.01};
};

/// Assigns wild roles; deterministic per seed.
[[nodiscard]] RoleVector assign_wild_roles(const topology::GeneratedTopology& topo,
                                           const WildParams& params);

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_WILD_H
