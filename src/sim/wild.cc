#include "sim/wild.h"

#include "topology/rng.h"

namespace bgpcu::sim {

RoleVector assign_wild_roles(const topology::GeneratedTopology& topo, const WildParams& params) {
  const std::size_t n = topo.graph.node_count();
  RoleVector roles(n);
  topology::Rng rng(params.seed ^ 0x317Dull);

  for (std::size_t node = 0; node < n; ++node) {
    const auto tier_idx = static_cast<std::size_t>(topo.tier_of(static_cast<topology::NodeId>(node)));
    Role role;
    role.tagger = rng.chance(params.p_tagger[tier_idx]);
    role.cleaner = rng.chance(params.p_cleaner[tier_idx]);
    if (role.tagger && rng.chance(params.selective_share)) {
      const double u = rng.uniform();
      role.selectivity = u < params.sel_skip_provider ? Selectivity::kSkipProvider
                         : u < params.sel_skip_provider + params.sel_skip_provider_peer
                             ? Selectivity::kSkipProviderPeer
                             : Selectivity::kCollectorOnly;
    }
    roles[node] = role;
  }
  return roles;
}

}  // namespace bgpcu::sim
