#include "sim/peering.h"

#include <algorithm>

#include "sim/output_model.h"
#include "topology/routing.h"
#include "topology/rng.h"

namespace bgpcu::sim {

using topology::NodeId;

PeeringObservation run_peering_experiment(const topology::GeneratedTopology& topo,
                                          const std::vector<topology::NodeId>& peers,
                                          const RoleVector& roles, const PeeringConfig& config) {
  PeeringObservation out;
  topology::Rng rng(config.seed ^ 0x9EE21Aull);

  // Extend a copy of the topology with the testbed AS, dodging an ASN
  // collision with the synthetic allocation if necessary.
  topology::GeneratedTopology ext = topo;
  bgp::Asn testbed_asn = config.testbed_asn;
  while (ext.graph.node_of(testbed_asn).has_value()) ++testbed_asn;
  const NodeId testbed = ext.graph.add_as(testbed_asn);
  ext.tier.push_back(topology::Tier::kLeaf);
  ext.prefixes.emplace_back();

  // Attach the testbed to `num_pops` distinct transit upstreams (the PoPs).
  std::vector<NodeId> pops;
  std::vector<NodeId> transit_pool;
  for (NodeId node = 0; node < topo.graph.node_count(); ++node) {
    const auto tier = topo.tier_of(node);
    if (tier == topology::Tier::kLargeTransit || tier == topology::Tier::kSmallTransit) {
      transit_pool.push_back(node);
    }
  }
  while (pops.size() < config.num_pops && pops.size() < transit_pool.size()) {
    const NodeId cand = transit_pool[rng.below(transit_pool.size())];
    if (std::find(pops.begin(), pops.end(), cand) == pops.end()) {
      pops.push_back(cand);
      ext.graph.add_c2p(testbed, cand);
    }
  }
  out.pop_asns.reserve(pops.size());
  for (const NodeId pop : pops) out.pop_asns.push_back(ext.graph.asn_of(pop));

  // The testbed is a consistent tagger; every other AS keeps its wild role.
  RoleVector ext_roles = roles;
  ext_roles.push_back(Role{true, false, Selectivity::kNone});

  // Propagate the /24 announcement and collect what each collector peer
  // exports. The per-PoP community pair is keyed on the first-hop upstream.
  topology::RouteComputer computer(ext.graph);
  computer.compute(testbed);
  const std::vector<bool> no_noise;
  OutputConfig output;  // the injected announcement itself is noise-free

  for (const NodeId peer : peers) {
    if (!computer.has_route(peer)) continue;
    const auto path = computer.path_from(peer);
    if (path.size() < 2) continue;
    const NodeId pop = path[path.size() - 2];
    const auto pop_index = static_cast<std::uint32_t>(
        std::find(pops.begin(), pops.end(), pop) - pops.begin());

    bgp::CommunitySet origin_set{
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(testbed_asn),
                                     static_cast<std::uint16_t>(1000 + 2 * pop_index)),
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(testbed_asn),
                                     static_cast<std::uint16_t>(1001 + 2 * pop_index)),
    };

    core::PathCommTuple tuple;
    tuple.path.reserve(path.size());
    for (const NodeId node : path) tuple.path.push_back(ext.graph.asn_of(node));
    tuple.comms = compute_output(ext, path, ext_roles, no_noise, output, rng, &origin_set);
    out.tuples.push_back(std::move(tuple));
  }
  core::deduplicate(out.tuples);
  return out;
}

PeeringValidation validate_observation(const PeeringObservation& obs,
                                       const core::InferenceResult& inference,
                                       bgp::Asn testbed_asn) {
  PeeringValidation v;
  for (const auto& tuple : obs.tuples) {
    const bool ours = bgp::contains_upper(tuple.comms, testbed_asn);
    bool cleaner = false;
    bool undecided = false;
    // Scan every AS that handled the announcement after the testbed (the
    // origin itself cannot clean its own communities).
    for (std::size_t i = 0; i + 1 < tuple.path.size(); ++i) {
      const auto fwd = inference.forwarding(tuple.path[i]);
      cleaner |= fwd == core::ForwardingClass::kCleaner;
      undecided |= fwd == core::ForwardingClass::kUndecided;
    }
    if (ours) {
      ++v.with_comms;
      if (cleaner) {
        ++v.with_comms_cleaner;  // contradiction
      } else if (undecided) {
        ++v.with_comms_undecided;
      }
    } else {
      ++v.without_comms;
      if (cleaner) {
        ++v.without_comms_cleaner;  // consistent with the inference
      } else if (undecided) {
        ++v.without_comms_undecided;
      }
    }
  }
  return v;
}

}  // namespace bgpcu::sim
