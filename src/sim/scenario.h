// Ground-truth scenario construction (§6.1, §6.2): assigns known roles to
// every AS of a path substrate, computes the community output every collector
// peer would export, and derives the per-AS visibility flags (hidden / leaf)
// that the paper's confusion matrices (Tables 5 and 6) are built from.
#ifndef BGPCU_SIM_SCENARIO_H
#define BGPCU_SIM_SCENARIO_H

#include <cstdint>
#include <string>

#include "core/types.h"
#include "sim/output_model.h"
#include "sim/roles.h"
#include "sim/substrate.h"

namespace bgpcu::sim {

/// The paper's verification scenarios (§6).
enum class ScenarioKind {
  kAllTf,        ///< Everyone tagger-forward: visibility maximized.
  kAllTc,        ///< Everyone tagger-cleaner: visibility minimized.
  kRandom,       ///< Roles tf/tc/sf/sc uniform at random.
  kRandomNoise,  ///< kRandom plus §6.1 noise.
  kRandomP,      ///< kRandom; 50% of taggers skip provider links (§6.2).
  kRandomPp,     ///< kRandom; 50% of taggers tag only customer links (§6.2).
};

[[nodiscard]] const char* to_string(ScenarioKind kind) noexcept;

/// Scenario parameters.
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kRandom;
  std::uint64_t seed = 1;
  double selective_share = 0.5;  ///< Share of taggers made selective (-p/-pp).
  /// Noise knobs; `enabled` is forced on for kRandomNoise.
  NoiseConfig noise;
  /// Independent observations per path (RIB snapshots + daylong update
  /// re-announcements of the same route). Identical draws deduplicate, so
  /// this only multiplies tuples when stochastic noise/pollution is active —
  /// which is exactly how noisy variants of a path accumulate as distinct
  /// unique tuples in the paper's 77M-tuple input.
  std::uint32_t observations_per_path = 3;
};

/// A generated ground-truth data set: the tuples the engine will consume
/// plus everything needed to score it afterwards.
struct GroundTruth {
  core::Dataset dataset;
  RoleVector roles;                    ///< By NodeId.
  std::vector<bool> present;           ///< Appears in the substrate.
  std::vector<bool> leaf;              ///< Never at a transit position (§3.1).
  std::vector<bool> tagging_hidden;    ///< No cleaner-free upstream anywhere.
  std::vector<bool> forwarding_hidden; ///< Additionally never illuminated.
};

/// Assigns roles for `config.kind`; deterministic per seed. Roles use the
/// same seed across kinds so kRandom / kRandomNoise / kRandomP share role
/// draws like the paper's "same seed" comparison (§6.4).
[[nodiscard]] RoleVector assign_roles(const topology::GeneratedTopology& topo,
                                      const ScenarioConfig& config);

/// Computes output(A1) for every substrate path under `roles`, dedups, and
/// returns the dataset. `observations` independent draws are made per path
/// (see ScenarioConfig::observations_per_path).
[[nodiscard]] core::Dataset generate_dataset(const topology::GeneratedTopology& topo,
                                             const PathSubstrate& substrate,
                                             const RoleVector& roles, const OutputConfig& config,
                                             std::uint64_t seed, std::uint32_t observations = 1);

/// True-role visibility analysis (§5.1.2, §6.4): which ASes' behaviors can
/// possibly be observed given the cleaner placement and selective tagging.
void compute_visibility(const topology::GeneratedTopology& topo, const PathSubstrate& substrate,
                        const RoleVector& roles, std::vector<bool>& tagging_visible,
                        std::vector<bool>& forwarding_visible);

/// One-call scenario build: roles + dataset + flags.
[[nodiscard]] GroundTruth build_scenario(const topology::GeneratedTopology& topo,
                                         const PathSubstrate& substrate,
                                         const ScenarioConfig& config);

}  // namespace bgpcu::sim

#endif  // BGPCU_SIM_SCENARIO_H
