#include "mrt/reader.h"

#include <fstream>

namespace bgpcu::mrt {

std::optional<RawRecord> MrtReader::next() {
  constexpr std::size_t kHeaderSize = 12;
  if (reader_.remaining() == 0) return std::nullopt;
  if (reader_.remaining() < kHeaderSize) {
    stats_.truncated_tail += reader_.remaining();
    reader_.skip(reader_.remaining());
    return std::nullopt;
  }
  RawRecord rec;
  rec.timestamp = reader_.u32();
  rec.type = reader_.u16();
  rec.subtype = reader_.u16();
  const std::uint32_t length = reader_.u32();
  if (length > reader_.remaining()) {
    // Truncated final record: account for it and stop.
    stats_.truncated_tail += kHeaderSize + reader_.remaining();
    reader_.skip(reader_.remaining());
    return std::nullopt;
  }
  const auto body = reader_.bytes(length);
  rec.body.assign(body.begin(), body.end());
  ++stats_.records;
  return rec;
}

std::vector<std::uint8_t> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw bgp::WireError("cannot open MRT file: " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw bgp::WireError("cannot read MRT file: " + path);
  return bytes;
}

MrtFileReader::MrtFileReader(const std::string& path) {
  const auto data = load_file(path);
  MrtReader reader(data);
  while (auto rec = reader.next()) {
    records_.push_back(std::move(*rec));
  }
  stats_ = reader.stats();
}

}  // namespace bgpcu::mrt
