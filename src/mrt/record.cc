#include "mrt/record.h"

namespace bgpcu::mrt {

void RawRecord::encode(bgp::ByteWriter& w) const {
  w.u32(timestamp);
  w.u16(type);
  w.u16(subtype);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.bytes(body);
}

}  // namespace bgpcu::mrt
