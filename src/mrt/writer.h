// MRT writer: serializes typed records into an in-memory dump buffer and
// optionally flushes it to a file, mirroring how collectors bin updates and
// RIB snapshots into MRT files.
#ifndef BGPCU_MRT_WRITER_H
#define BGPCU_MRT_WRITER_H

#include <cstdint>
#include <string>
#include <vector>

#include "mrt/bgp4mp.h"
#include "mrt/record.h"
#include "mrt/table_dump_v2.h"

namespace bgpcu::mrt {

/// Accumulates MRT records into one dump image.
class MrtWriter {
 public:
  /// Appends a raw record.
  void write(const RawRecord& record);

  /// Appends a PEER_INDEX_TABLE record.
  void write_peer_index(std::uint32_t timestamp, const PeerIndexTable& table);

  /// Appends a RIB record (subtype chosen from the prefix AFI).
  void write_rib(std::uint32_t timestamp, const RibRecord& rib);

  /// Appends a BGP4MP message record (subtype chosen from `msg.as4`).
  void write_message(std::uint32_t timestamp, const Bgp4mpMessage& msg);

  /// Appends a BGP4MP state-change record.
  void write_state_change(std::uint32_t timestamp, const Bgp4mpStateChange& change);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept { return writer_.buffer(); }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return writer_.take(); }
  [[nodiscard]] std::uint64_t records_written() const noexcept { return records_; }

  /// Writes the accumulated buffer to `path`. Throws WireError on I/O error.
  void flush_to_file(const std::string& path) const;

 private:
  bgp::ByteWriter writer_;
  std::uint64_t records_ = 0;
};

}  // namespace bgpcu::mrt

#endif  // BGPCU_MRT_WRITER_H
