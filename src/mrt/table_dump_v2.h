// TABLE_DUMP_V2 RIB snapshot records (RFC 6396 section 4.3): the
// PEER_INDEX_TABLE that maps peer indices to (BGP ID, IP, ASN) and the
// per-prefix RIB records holding one entry per peer that carries the route.
#ifndef BGPCU_MRT_TABLE_DUMP_V2_H
#define BGPCU_MRT_TABLE_DUMP_V2_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/asn.h"
#include "bgp/path_attribute.h"
#include "bgp/prefix.h"
#include "mrt/record.h"

namespace bgpcu::mrt {

/// One peer in the PEER_INDEX_TABLE.
struct PeerEntry {
  std::uint32_t bgp_id = 0;
  bool ipv6 = false;  ///< Address family of `ip`.
  std::array<std::uint8_t, 16> ip{};
  bgp::Asn asn = 0;
  bool as4 = true;  ///< Whether the ASN is encoded in 4 bytes.

  /// Convenience constructor for an IPv4 peer.
  static PeerEntry ipv4_peer(std::uint32_t bgp_id, std::uint32_t ipv4, bgp::Asn asn);

  friend bool operator==(const PeerEntry&, const PeerEntry&) = default;
};

/// PEER_INDEX_TABLE: emitted once at the head of each RIB dump; RIB entries
/// reference peers by their index in this table.
struct PeerIndexTable {
  std::uint32_t collector_bgp_id = 0;
  std::string view_name;
  std::vector<PeerEntry> peers;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static PeerIndexTable decode(std::span<const std::uint8_t> body);

  friend bool operator==(const PeerIndexTable&, const PeerIndexTable&) = default;
};

/// One route for a prefix as seen from one peer.
struct RibEntry {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  bgp::PathAttributes attributes;  ///< AS_PATH always 4-byte in TABLE_DUMP_V2.

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

/// RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: a prefix plus the per-peer
/// routes for it.
struct RibRecord {
  std::uint32_t sequence = 0;
  bgp::Prefix prefix;
  std::vector<RibEntry> entries;

  /// Subtype implied by the prefix address family.
  [[nodiscard]] TableDumpV2Subtype subtype() const noexcept {
    return prefix.afi() == bgp::Afi::kIpv4 ? TableDumpV2Subtype::kRibIpv4Unicast
                                           : TableDumpV2Subtype::kRibIpv6Unicast;
  }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static RibRecord decode(std::span<const std::uint8_t> body, TableDumpV2Subtype subtype);

  friend bool operator==(const RibRecord&, const RibRecord&) = default;
};

}  // namespace bgpcu::mrt

#endif  // BGPCU_MRT_TABLE_DUMP_V2_H
