// BGP4MP records (RFC 6396 section 4.4): BGP messages as captured on a
// collector session, with 2-byte (MESSAGE) and 4-byte (MESSAGE_AS4) peer ASN
// encodings, plus session state changes.
#ifndef BGPCU_MRT_BGP4MP_H
#define BGPCU_MRT_BGP4MP_H

#include <array>
#include <cstdint>
#include <vector>

#include "bgp/asn.h"
#include "bgp/prefix.h"
#include "mrt/record.h"

namespace bgpcu::mrt {

/// A captured BGP message plus the session addressing that RFC 6396 wraps
/// around it. `as4` mirrors the record subtype (MESSAGE vs MESSAGE_AS4) and
/// dictates both the header ASN width and the AS_PATH encoding inside
/// `bgp_message`.
struct Bgp4mpMessage {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  std::uint16_t interface_index = 0;
  bool ipv6 = false;
  std::array<std::uint8_t, 16> peer_ip{};
  std::array<std::uint8_t, 16> local_ip{};
  bool as4 = true;
  std::vector<std::uint8_t> bgp_message;  ///< Full message incl. 19-byte header.

  /// Convenience constructor for an IPv4 session.
  static Bgp4mpMessage ipv4_session(bgp::Asn peer_asn, bgp::Asn local_asn, std::uint32_t peer_ip,
                                    std::uint32_t local_ip, std::vector<std::uint8_t> message,
                                    bool as4 = true);

  [[nodiscard]] Bgp4mpSubtype subtype() const noexcept {
    return as4 ? Bgp4mpSubtype::kMessageAs4 : Bgp4mpSubtype::kMessage;
  }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Bgp4mpMessage decode(std::span<const std::uint8_t> body, Bgp4mpSubtype subtype);

  friend bool operator==(const Bgp4mpMessage&, const Bgp4mpMessage&) = default;
};

/// BGP FSM states used by STATE_CHANGE records.
enum class BgpState : std::uint16_t {
  kIdle = 1,
  kConnect = 2,
  kActive = 3,
  kOpenSent = 4,
  kOpenConfirm = 5,
  kEstablished = 6,
};

/// A session state transition record.
struct Bgp4mpStateChange {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  std::uint16_t interface_index = 0;
  bool ipv6 = false;
  std::array<std::uint8_t, 16> peer_ip{};
  std::array<std::uint8_t, 16> local_ip{};
  bool as4 = true;
  BgpState old_state = BgpState::kIdle;
  BgpState new_state = BgpState::kIdle;

  [[nodiscard]] Bgp4mpSubtype subtype() const noexcept {
    return as4 ? Bgp4mpSubtype::kStateChangeAs4 : Bgp4mpSubtype::kStateChange;
  }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Bgp4mpStateChange decode(std::span<const std::uint8_t> body, Bgp4mpSubtype subtype);

  friend bool operator==(const Bgp4mpStateChange&, const Bgp4mpStateChange&) = default;
};

}  // namespace bgpcu::mrt

#endif  // BGPCU_MRT_BGP4MP_H
