// Streaming MRT readers. `MrtReader` iterates records in an in-memory
// buffer; `MrtFileReader` memory-loads a file first. Both run in a tolerant
// mode modeled on production collectors: a record with a corrupt body is
// counted and skipped (the common header's length field still frames it), so
// one bad record cannot poison a multi-gigabyte dump.
#ifndef BGPCU_MRT_READER_H
#define BGPCU_MRT_READER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mrt/record.h"

namespace bgpcu::mrt {

/// Counters describing what a reader encountered.
struct ReaderStats {
  std::uint64_t records = 0;        ///< Well-framed records returned.
  std::uint64_t skipped = 0;        ///< Records dropped by the type filter.
  std::uint64_t truncated_tail = 0; ///< Bytes of unparseable trailing data.

  friend bool operator==(const ReaderStats&, const ReaderStats&) = default;
};

/// Iterates MRT records over a borrowed byte buffer. The buffer must outlive
/// the reader.
class MrtReader {
 public:
  explicit MrtReader(std::span<const std::uint8_t> data) : reader_(data) {}

  /// Returns the next record, or nullopt at end of input. Throws WireError
  /// only when the *framing* is damaged beyond recovery (truncated header
  /// mid-stream is reported via stats instead).
  std::optional<RawRecord> next();

  [[nodiscard]] const ReaderStats& stats() const noexcept { return stats_; }

 private:
  bgp::ByteReader reader_;
  ReaderStats stats_;
};

/// Loads a file's raw bytes (the shared helper behind the file-based
/// consumers). Throws WireError when the file cannot be opened or read.
[[nodiscard]] std::vector<std::uint8_t> load_file(const std::string& path);

/// Loads an MRT file fully into memory and exposes `records()`. Suitable for
/// the file sizes the simulator emits; real multi-GB dumps would use the
/// streaming reader on an mmap.
class MrtFileReader {
 public:
  explicit MrtFileReader(const std::string& path);

  [[nodiscard]] const std::vector<RawRecord>& records() const noexcept { return records_; }
  [[nodiscard]] const ReaderStats& stats() const noexcept { return stats_; }

 private:
  std::vector<RawRecord> records_;
  ReaderStats stats_;
};

}  // namespace bgpcu::mrt

#endif  // BGPCU_MRT_READER_H
