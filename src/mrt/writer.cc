#include "mrt/writer.h"

#include <fstream>

namespace bgpcu::mrt {

void MrtWriter::write(const RawRecord& record) {
  record.encode(writer_);
  ++records_;
}

void MrtWriter::write_peer_index(std::uint32_t timestamp, const PeerIndexTable& table) {
  RawRecord rec;
  rec.timestamp = timestamp;
  rec.type = static_cast<std::uint16_t>(MrtType::kTableDumpV2);
  rec.subtype = static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable);
  rec.body = table.encode();
  write(rec);
}

void MrtWriter::write_rib(std::uint32_t timestamp, const RibRecord& rib) {
  RawRecord rec;
  rec.timestamp = timestamp;
  rec.type = static_cast<std::uint16_t>(MrtType::kTableDumpV2);
  rec.subtype = static_cast<std::uint16_t>(rib.subtype());
  rec.body = rib.encode();
  write(rec);
}

void MrtWriter::write_message(std::uint32_t timestamp, const Bgp4mpMessage& msg) {
  RawRecord rec;
  rec.timestamp = timestamp;
  rec.type = static_cast<std::uint16_t>(MrtType::kBgp4mp);
  rec.subtype = static_cast<std::uint16_t>(msg.subtype());
  rec.body = msg.encode();
  write(rec);
}

void MrtWriter::write_state_change(std::uint32_t timestamp, const Bgp4mpStateChange& change) {
  RawRecord rec;
  rec.timestamp = timestamp;
  rec.type = static_cast<std::uint16_t>(MrtType::kBgp4mp);
  rec.subtype = static_cast<std::uint16_t>(change.subtype());
  rec.body = change.encode();
  write(rec);
}

void MrtWriter::flush_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw bgp::WireError("cannot open MRT file for writing: " + path);
  const auto& buf = writer_.buffer();
  out.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  if (!out) throw bgp::WireError("short write to MRT file: " + path);
}

}  // namespace bgpcu::mrt
