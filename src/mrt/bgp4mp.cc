#include "mrt/bgp4mp.h"

#include <cstring>

namespace bgpcu::mrt {

using bgp::ByteReader;
using bgp::ByteWriter;
using bgp::WireError;

namespace {

void put_ipv4(std::array<std::uint8_t, 16>& out, std::uint32_t addr) {
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(addr >> (24 - 8 * i));
  }
}

// Shared session-header codec for MESSAGE and STATE_CHANGE bodies.
template <typename T>
void encode_session(ByteWriter& w, const T& rec) {
  if (rec.as4) {
    w.u32(rec.peer_asn);
    w.u32(rec.local_asn);
  } else {
    if (!bgp::is_16bit_asn(rec.peer_asn) || !bgp::is_16bit_asn(rec.local_asn)) {
      throw WireError("BGP4MP 2-byte subtype with 32-bit ASN");
    }
    w.u16(static_cast<std::uint16_t>(rec.peer_asn));
    w.u16(static_cast<std::uint16_t>(rec.local_asn));
  }
  w.u16(rec.interface_index);
  w.u16(rec.ipv6 ? 2 : 1);  // address family: 1 = IPv4, 2 = IPv6
  const std::size_t ip_len = rec.ipv6 ? 16u : 4u;
  w.bytes(std::span<const std::uint8_t>(rec.peer_ip.data(), ip_len));
  w.bytes(std::span<const std::uint8_t>(rec.local_ip.data(), ip_len));
}

template <typename T>
void decode_session(ByteReader& r, T& rec, bool as4) {
  rec.as4 = as4;
  rec.peer_asn = as4 ? r.u32() : r.u16();
  rec.local_asn = as4 ? r.u32() : r.u16();
  rec.interface_index = r.u16();
  const std::uint16_t afi = r.u16();
  if (afi != 1 && afi != 2) throw WireError("BGP4MP bad address family " + std::to_string(afi));
  rec.ipv6 = afi == 2;
  const std::size_t ip_len = rec.ipv6 ? 16u : 4u;
  const auto peer = r.bytes(ip_len);
  const auto local = r.bytes(ip_len);
  std::memcpy(rec.peer_ip.data(), peer.data(), ip_len);
  std::memcpy(rec.local_ip.data(), local.data(), ip_len);
}

}  // namespace

Bgp4mpMessage Bgp4mpMessage::ipv4_session(bgp::Asn peer_asn, bgp::Asn local_asn,
                                          std::uint32_t peer_ip, std::uint32_t local_ip,
                                          std::vector<std::uint8_t> message, bool as4) {
  Bgp4mpMessage m;
  m.peer_asn = peer_asn;
  m.local_asn = local_asn;
  m.as4 = as4;
  put_ipv4(m.peer_ip, peer_ip);
  put_ipv4(m.local_ip, local_ip);
  m.bgp_message = std::move(message);
  return m;
}

std::vector<std::uint8_t> Bgp4mpMessage::encode() const {
  ByteWriter w;
  encode_session(w, *this);
  w.bytes(bgp_message);
  return w.take();
}

Bgp4mpMessage Bgp4mpMessage::decode(std::span<const std::uint8_t> body, Bgp4mpSubtype subtype) {
  if (subtype != Bgp4mpSubtype::kMessage && subtype != Bgp4mpSubtype::kMessageAs4) {
    throw WireError("not a BGP4MP message subtype");
  }
  ByteReader r(body);
  Bgp4mpMessage out;
  decode_session(r, out, subtype == Bgp4mpSubtype::kMessageAs4);
  const auto msg = r.bytes(r.remaining());
  out.bgp_message.assign(msg.begin(), msg.end());
  return out;
}

std::vector<std::uint8_t> Bgp4mpStateChange::encode() const {
  ByteWriter w;
  encode_session(w, *this);
  w.u16(static_cast<std::uint16_t>(old_state));
  w.u16(static_cast<std::uint16_t>(new_state));
  return w.take();
}

Bgp4mpStateChange Bgp4mpStateChange::decode(std::span<const std::uint8_t> body,
                                            Bgp4mpSubtype subtype) {
  if (subtype != Bgp4mpSubtype::kStateChange && subtype != Bgp4mpSubtype::kStateChangeAs4) {
    throw WireError("not a BGP4MP state-change subtype");
  }
  ByteReader r(body);
  Bgp4mpStateChange out;
  decode_session(r, out, subtype == Bgp4mpSubtype::kStateChangeAs4);
  const std::uint16_t old_state = r.u16();
  const std::uint16_t new_state = r.u16();
  if (old_state < 1 || old_state > 6 || new_state < 1 || new_state > 6) {
    throw WireError("BGP4MP state out of range");
  }
  out.old_state = static_cast<BgpState>(old_state);
  out.new_state = static_cast<BgpState>(new_state);
  if (!r.exhausted()) throw WireError("trailing bytes after STATE_CHANGE");
  return out;
}

}  // namespace bgpcu::mrt
