// MRT (Multi-Threaded Routing Toolkit, RFC 6396) record framing: the 12-byte
// common header and the type/subtype registry entries this library models.
#ifndef BGPCU_MRT_RECORD_H
#define BGPCU_MRT_RECORD_H

#include <cstdint>
#include <vector>

#include "bgp/wire.h"

namespace bgpcu::mrt {

/// MRT top-level record types (RFC 6396 section 4).
enum class MrtType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,
  kBgp4mpEt = 17,  ///< BGP4MP with microsecond timestamp extension.
};

/// TABLE_DUMP_V2 subtypes (RFC 6396 section 4.3).
enum class TableDumpV2Subtype : std::uint16_t {
  kPeerIndexTable = 1,
  kRibIpv4Unicast = 2,
  kRibIpv6Unicast = 4,
};

/// BGP4MP subtypes (RFC 6396 section 4.4).
enum class Bgp4mpSubtype : std::uint16_t {
  kStateChange = 0,
  kMessage = 1,
  kMessageAs4 = 4,
  kStateChangeAs4 = 5,
};

/// One MRT record: common header fields plus the raw body. Decoding of the
/// body into typed structures happens in the table_dump_v2 / bgp4mp modules.
struct RawRecord {
  std::uint32_t timestamp = 0;  ///< Seconds since the UNIX epoch.
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;

  [[nodiscard]] MrtType mrt_type() const noexcept { return static_cast<MrtType>(type); }

  /// Serializes header + body.
  void encode(bgp::ByteWriter& w) const;

  friend bool operator==(const RawRecord&, const RawRecord&) = default;
};

}  // namespace bgpcu::mrt

#endif  // BGPCU_MRT_RECORD_H
