#include "mrt/table_dump_v2.h"

#include <cstring>

namespace bgpcu::mrt {

using bgp::ByteReader;
using bgp::ByteWriter;
using bgp::WireError;

PeerEntry PeerEntry::ipv4_peer(std::uint32_t bgp_id, std::uint32_t ipv4, bgp::Asn asn) {
  PeerEntry e;
  e.bgp_id = bgp_id;
  e.ipv6 = false;
  for (int i = 0; i < 4; ++i) {
    e.ip[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(ipv4 >> (24 - 8 * i));
  }
  e.asn = asn;
  e.as4 = true;
  return e;
}

std::vector<std::uint8_t> PeerIndexTable::encode() const {
  ByteWriter w;
  w.u32(collector_bgp_id);
  if (view_name.size() > 0xFFFF) throw WireError("view name too long");
  w.u16(static_cast<std::uint16_t>(view_name.size()));
  w.bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(view_name.data()),
                                        view_name.size()));
  if (peers.size() > 0xFFFF) throw WireError("too many peers for PEER_INDEX_TABLE");
  w.u16(static_cast<std::uint16_t>(peers.size()));
  for (const auto& peer : peers) {
    // Peer type bits: 0x1 = IPv6 address, 0x2 = 4-byte ASN.
    w.u8(static_cast<std::uint8_t>((peer.ipv6 ? 0x1 : 0) | (peer.as4 ? 0x2 : 0)));
    w.u32(peer.bgp_id);
    w.bytes(std::span<const std::uint8_t>(peer.ip.data(), peer.ipv6 ? 16u : 4u));
    if (peer.as4) {
      w.u32(peer.asn);
    } else {
      if (!bgp::is_16bit_asn(peer.asn)) throw WireError("2-byte peer entry with 32-bit ASN");
      w.u16(static_cast<std::uint16_t>(peer.asn));
    }
  }
  return w.take();
}

PeerIndexTable PeerIndexTable::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  PeerIndexTable out;
  out.collector_bgp_id = r.u32();
  const std::uint16_t name_len = r.u16();
  const auto name = r.bytes(name_len);
  out.view_name.assign(reinterpret_cast<const char*>(name.data()), name.size());
  const std::uint16_t count = r.u16();
  out.peers.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    PeerEntry peer;
    const std::uint8_t type = r.u8();
    peer.ipv6 = (type & 0x1) != 0;
    peer.as4 = (type & 0x2) != 0;
    peer.bgp_id = r.u32();
    const auto ip = r.bytes(peer.ipv6 ? 16u : 4u);
    std::memcpy(peer.ip.data(), ip.data(), ip.size());
    peer.asn = peer.as4 ? r.u32() : r.u16();
    out.peers.push_back(peer);
  }
  if (!r.exhausted()) throw WireError("trailing bytes after PEER_INDEX_TABLE");
  return out;
}

std::vector<std::uint8_t> RibRecord::encode() const {
  ByteWriter w;
  w.u32(sequence);
  prefix.encode_nlri(w);
  if (entries.size() > 0xFFFF) throw WireError("too many RIB entries");
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const auto& entry : entries) {
    w.u16(entry.peer_index);
    w.u32(entry.originated_time);
    ByteWriter attrs;
    entry.attributes.encode(attrs, /*four_byte=*/true);
    if (attrs.size() > 0xFFFF) throw WireError("RIB entry attributes exceed 64KiB");
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs.buffer());
  }
  return w.take();
}

RibRecord RibRecord::decode(std::span<const std::uint8_t> body, TableDumpV2Subtype subtype) {
  ByteReader r(body);
  RibRecord out;
  out.sequence = r.u32();
  const auto afi =
      subtype == TableDumpV2Subtype::kRibIpv4Unicast ? bgp::Afi::kIpv4 : bgp::Afi::kIpv6;
  out.prefix = bgp::Prefix::decode_nlri(r, afi);
  const std::uint16_t count = r.u16();
  out.entries.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    RibEntry entry;
    entry.peer_index = r.u16();
    entry.originated_time = r.u32();
    const std::uint16_t attr_len = r.u16();
    entry.attributes = bgp::PathAttributes::decode(r.sub(attr_len), /*four_byte=*/true);
    out.entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) throw WireError("trailing bytes after RIB record");
  return out;
}

}  // namespace bgpcu::mrt
