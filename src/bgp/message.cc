#include "bgp/message.h"

#include <algorithm>

namespace bgpcu::bgp {

namespace {

constexpr std::size_t kHeaderSize = 19;

void write_header(ByteWriter& w, MessageType type, std::size_t body_size) {
  const std::size_t total = kHeaderSize + body_size;
  if (total > kMaxMessageSize) {
    throw WireError("BGP message size " + std::to_string(total) + " exceeds 4096");
  }
  for (int i = 0; i < 16; ++i) w.u8(0xFF);
  w.u16(static_cast<std::uint16_t>(total));
  w.u8(static_cast<std::uint8_t>(type));
}

ByteReader open_body(std::span<const std::uint8_t> message, MessageType expected) {
  const MessageHeader header = peek_header(message);
  if (header.type != expected) {
    throw WireError("unexpected BGP message type " +
                    std::to_string(static_cast<unsigned>(header.type)));
  }
  if (header.length != message.size()) {
    throw WireError("BGP header length " + std::to_string(header.length) +
                    " != buffer size " + std::to_string(message.size()));
  }
  ByteReader r(message);
  r.skip(kHeaderSize);
  return r;
}

}  // namespace

MessageHeader peek_header(std::span<const std::uint8_t> message) {
  if (message.size() < kHeaderSize) throw WireError("BGP message shorter than header");
  for (std::size_t i = 0; i < 16; ++i) {
    if (message[i] != 0xFF) throw WireError("BGP marker is not all-ones");
  }
  ByteReader r(message.subspan(16));
  MessageHeader header;
  header.length = r.u16();
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 4) throw WireError("unknown BGP message type " + std::to_string(type));
  header.type = static_cast<MessageType>(type);
  if (header.length < kHeaderSize) throw WireError("BGP header length below minimum");
  return header;
}

std::vector<std::uint8_t> UpdateMessage::encode(bool four_byte) const {
  ByteWriter body;
  ByteWriter withdrawn_w;
  for (const auto& p : withdrawn) {
    if (p.afi() != Afi::kIpv4) throw WireError("classic UPDATE carries IPv4 withdrawals only");
    p.encode_nlri(withdrawn_w);
  }
  body.u16(static_cast<std::uint16_t>(withdrawn_w.size()));
  body.bytes(withdrawn_w.buffer());

  ByteWriter attrs_w;
  attributes.encode(attrs_w, four_byte);
  body.u16(static_cast<std::uint16_t>(attrs_w.size()));
  body.bytes(attrs_w.buffer());

  for (const auto& p : nlri) {
    if (p.afi() != Afi::kIpv4) throw WireError("classic UPDATE carries IPv4 NLRI only");
    p.encode_nlri(body);
  }

  ByteWriter out;
  write_header(out, MessageType::kUpdate, body.size());
  out.bytes(body.buffer());
  return out.take();
}

UpdateMessage UpdateMessage::decode(std::span<const std::uint8_t> message, bool four_byte) {
  ByteReader r = open_body(message, MessageType::kUpdate);
  UpdateMessage out;

  const std::uint16_t withdrawn_len = r.u16();
  ByteReader withdrawn_r = r.sub(withdrawn_len);
  while (!withdrawn_r.exhausted()) {
    out.withdrawn.push_back(Prefix::decode_nlri(withdrawn_r, Afi::kIpv4));
  }

  const std::uint16_t attrs_len = r.u16();
  out.attributes = PathAttributes::decode(r.sub(attrs_len), four_byte);

  while (!r.exhausted()) {
    out.nlri.push_back(Prefix::decode_nlri(r, Afi::kIpv4));
  }
  return out;
}

std::vector<std::uint8_t> OpenMessage::encode() const {
  ByteWriter body;
  body.u8(version);
  body.u16(my_asn);
  body.u16(hold_time);
  body.u32(bgp_id);
  body.u8(0);  // no optional parameters
  ByteWriter out;
  write_header(out, MessageType::kOpen, body.size());
  out.bytes(body.buffer());
  return out.take();
}

OpenMessage OpenMessage::decode(std::span<const std::uint8_t> message) {
  ByteReader r = open_body(message, MessageType::kOpen);
  OpenMessage out;
  out.version = r.u8();
  out.my_asn = r.u16();
  out.hold_time = r.u16();
  out.bgp_id = r.u32();
  const std::uint8_t opt_len = r.u8();
  r.skip(opt_len);
  return out;
}

std::vector<std::uint8_t> encode_keepalive() {
  ByteWriter out;
  write_header(out, MessageType::kKeepalive, 0);
  return out.take();
}

}  // namespace bgpcu::bgp
