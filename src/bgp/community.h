// BGP community values: regular communities (RFC 1997, 32-bit "asn:value")
// and large communities (RFC 8092, 96-bit "admin:local1:local2"). The paper
// unifies both by their *upper field* (the Global Administrator) which is the
// only part its inference algorithm consults.
#ifndef BGPCU_BGP_COMMUNITY_H
#define BGPCU_BGP_COMMUNITY_H

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/asn.h"
#include "bgp/wire.h"

namespace bgpcu::bgp {

/// Kind of community attribute a value came from.
enum class CommunityKind : std::uint8_t { kRegular, kLarge };

/// Well-known regular community values (RFC 1997 / RFC 8642).
inline constexpr std::uint32_t kNoExport = 0xFFFFFF01;
inline constexpr std::uint32_t kNoAdvertise = 0xFFFFFF02;
inline constexpr std::uint32_t kNoExportSubconfed = 0xFFFFFF03;

/// A single community value in either variant, unified on the upper field.
///
/// * Regular `a:b`  -> upper = a (16-bit admin), low1 = b, low2 unused.
/// * Large `a:b:c`  -> upper = a (32-bit admin), low1 = b, low2 = c.
struct CommunityValue {
  Asn upper = 0;            ///< Global Administrator field.
  std::uint32_t low1 = 0;   ///< Regular: 16-bit value. Large: first 32-bit datum.
  std::uint32_t low2 = 0;   ///< Large only: second 32-bit datum.
  CommunityKind kind = CommunityKind::kRegular;

  /// Builds a regular community a:b (a, b both 16-bit).
  static constexpr CommunityValue regular(std::uint16_t admin, std::uint16_t value) noexcept {
    return CommunityValue{admin, value, 0, CommunityKind::kRegular};
  }

  /// Builds a large community a:b:c.
  static constexpr CommunityValue large(Asn admin, std::uint32_t v1, std::uint32_t v2) noexcept {
    return CommunityValue{admin, v1, v2, CommunityKind::kLarge};
  }

  /// Packed 32-bit wire form of a regular community.
  [[nodiscard]] constexpr std::uint32_t packed_regular() const noexcept {
    return (static_cast<std::uint32_t>(upper) << 16) | (low1 & 0xFFFF);
  }

  /// Unpacks a regular community from its 32-bit wire form.
  static constexpr CommunityValue from_packed_regular(std::uint32_t raw) noexcept {
    return regular(static_cast<std::uint16_t>(raw >> 16), static_cast<std::uint16_t>(raw));
  }

  /// True for RFC 1997 well-known communities (0xFFFFxxxx block); these have
  /// global semantics and no meaningful administrator.
  [[nodiscard]] constexpr bool is_well_known() const noexcept {
    return kind == CommunityKind::kRegular && upper == 0xFFFF;
  }

  /// "a:b" or "a:b:c" text form.
  [[nodiscard]] std::string to_string() const;

  /// Parses "a:b" (regular) or "a:b:c" (large). Throws WireError.
  static CommunityValue parse(const std::string& text);

  friend constexpr auto operator<=>(const CommunityValue&, const CommunityValue&) = default;
};

/// A community set as carried by one announcement (order preserved from the
/// wire; duplicates possible on the wire but removed by `normalize`).
using CommunitySet = std::vector<CommunityValue>;

/// Sorts and deduplicates a community set in place.
void normalize(CommunitySet& set);

/// True if `set` contains any community whose upper field equals `asn`.
[[nodiscard]] bool contains_upper(const CommunitySet& set, Asn asn) noexcept;

}  // namespace bgpcu::bgp

template <>
struct std::hash<bgpcu::bgp::CommunityValue> {
  std::size_t operator()(const bgpcu::bgp::CommunityValue& c) const noexcept {
    std::size_t h = c.upper;
    h = h * 1099511628211ull + c.low1;
    h = h * 1099511628211ull + c.low2;
    h = h * 1099511628211ull + static_cast<std::size_t>(c.kind);
    return h;
  }
};

#endif  // BGPCU_BGP_COMMUNITY_H
