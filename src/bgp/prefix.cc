#include "bgp/prefix.h"

#include <charconv>
#include <cstring>

namespace bgpcu::bgp {

namespace {

constexpr std::size_t addr_width(Afi afi) { return afi == Afi::kIpv4 ? 4 : 16; }

std::uint8_t parse_u8(std::string_view text, const char* what) {
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value > 255) {
    throw WireError(std::string("invalid ") + what + ": '" + std::string(text) + "'");
  }
  return static_cast<std::uint8_t>(value);
}

}  // namespace

Prefix Prefix::ipv4(std::uint32_t addr, std::uint8_t length) {
  if (length > 32) throw WireError("IPv4 prefix length > 32");
  Prefix p;
  p.afi_ = Afi::kIpv4;
  p.length_ = length;
  for (int i = 0; i < 4; ++i) {
    p.addr_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(addr >> (24 - 8 * i));
  }
  p.normalize();
  return p;
}

Prefix Prefix::ipv6(const std::array<std::uint8_t, 16>& addr, std::uint8_t length) {
  if (length > 128) throw WireError("IPv6 prefix length > 128");
  Prefix p;
  p.afi_ = Afi::kIpv6;
  p.length_ = length;
  p.addr_ = addr;
  p.normalize();
  return p;
}

Prefix Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) throw WireError("prefix missing '/len': " + text);
  const std::string addr = text.substr(0, slash);
  const std::string len = text.substr(slash + 1);

  if (addr.find(':') != std::string::npos) {
    // IPv6: support the canonical textual subset we emit (full or '::'-
    // compressed groups of hex quads).
    std::array<std::uint16_t, 8> groups{};
    std::size_t ngroups = 0;
    std::size_t tail_start = 8;
    std::string_view rest = addr;
    const auto dc = rest.find("::");
    auto parse_groups = [&](std::string_view part, std::size_t base, std::size_t limit) {
      std::size_t count = 0;
      while (!part.empty()) {
        const auto colon = part.find(':');
        const std::string_view g = part.substr(0, colon);
        if (g.empty() || count >= limit) throw WireError("bad IPv6 prefix: " + text);
        unsigned value = 0;
        const auto [p, ec] = std::from_chars(g.data(), g.data() + g.size(), value, 16);
        if (ec != std::errc() || p != g.data() + g.size() || value > 0xFFFF) {
          throw WireError("bad IPv6 group in: " + text);
        }
        groups.at(base + count) = static_cast<std::uint16_t>(value);
        ++count;
        if (colon == std::string_view::npos) break;
        part.remove_prefix(colon + 1);
      }
      return count;
    };
    if (dc == std::string_view::npos) {
      ngroups = parse_groups(rest, 0, 8);
      if (ngroups != 8) throw WireError("bad IPv6 prefix: " + text);
    } else {
      const std::string_view head = rest.substr(0, dc);
      const std::string_view tail = rest.substr(dc + 2);
      const std::size_t nh = head.empty() ? 0 : parse_groups(head, 0, 8);
      std::array<std::uint16_t, 8> tail_groups{};
      std::size_t nt = 0;
      if (!tail.empty()) {
        std::string_view part = tail;
        while (!part.empty()) {
          const auto colon = part.find(':');
          const std::string_view g = part.substr(0, colon);
          unsigned value = 0;
          const auto [p, ec] = std::from_chars(g.data(), g.data() + g.size(), value, 16);
          if (g.empty() || ec != std::errc() || p != g.data() + g.size() || value > 0xFFFF ||
              nt >= 8) {
            throw WireError("bad IPv6 prefix: " + text);
          }
          tail_groups.at(nt++) = static_cast<std::uint16_t>(value);
          if (colon == std::string_view::npos) break;
          part.remove_prefix(colon + 1);
        }
      }
      if (nh + nt > 7) throw WireError("bad IPv6 '::' prefix: " + text);
      tail_start = 8 - nt;
      for (std::size_t i = 0; i < nt; ++i) groups.at(tail_start + i) = tail_groups.at(i);
      ngroups = nh;
      (void)ngroups;
    }
    std::array<std::uint8_t, 16> bytes{};
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
      bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
    }
    unsigned length_value = 0;
    const auto [p, ec] = std::from_chars(len.data(), len.data() + len.size(), length_value);
    if (ec != std::errc() || p != len.data() + len.size() || length_value > 128) {
      throw WireError("bad IPv6 prefix length: " + text);
    }
    return ipv6(bytes, static_cast<std::uint8_t>(length_value));
  }

  // IPv4 dotted quad.
  std::uint32_t v4 = 0;
  std::string_view rest = addr;
  for (int i = 0; i < 4; ++i) {
    const auto dot = rest.find('.');
    const bool last = (i == 3);
    if (last != (dot == std::string_view::npos)) throw WireError("bad IPv4 prefix: " + text);
    const std::string_view octet = last ? rest : rest.substr(0, dot);
    v4 = (v4 << 8) | parse_u8(octet, "IPv4 octet");
    if (!last) rest.remove_prefix(dot + 1);
  }
  const std::uint8_t length_value = parse_u8(len, "prefix length");
  if (length_value > 32) throw WireError("bad IPv4 prefix length: " + text);
  return ipv4(v4, length_value);
}

std::uint32_t Prefix::ipv4_addr() const noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | addr_[static_cast<std::size_t>(i)];
  return v;
}

void Prefix::normalize() noexcept {
  const std::size_t width = addr_width(afi_);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i >= width) {
      addr_[i] = 0;
      continue;
    }
    const std::size_t bit_start = i * 8;
    if (bit_start >= length_) {
      addr_[i] = 0;
    } else if (bit_start + 8 > length_) {
      const auto keep = static_cast<unsigned>(length_ - bit_start);
      addr_[i] = static_cast<std::uint8_t>(addr_[i] & (0xFFu << (8 - keep)));
    }
  }
}

bool Prefix::contains(const Prefix& other) const noexcept {
  if (afi_ != other.afi_ || other.length_ < length_) return false;
  std::size_t bits = length_;
  for (std::size_t i = 0; i < addr_width(afi_) && bits > 0; ++i) {
    const unsigned take = bits >= 8 ? 8 : static_cast<unsigned>(bits);
    const auto mask = static_cast<std::uint8_t>(0xFFu << (8 - take));
    if ((addr_[i] & mask) != (other.addr_[i] & mask)) return false;
    bits -= take;
  }
  return true;
}

std::string Prefix::to_string() const {
  std::string out;
  if (afi_ == Afi::kIpv4) {
    for (int i = 0; i < 4; ++i) {
      if (i) out += '.';
      out += std::to_string(addr_[static_cast<std::size_t>(i)]);
    }
  } else {
    char buf[8];
    for (std::size_t i = 0; i < 8; ++i) {
      if (i) out += ':';
      const unsigned g = (static_cast<unsigned>(addr_[2 * i]) << 8) | addr_[2 * i + 1];
      std::snprintf(buf, sizeof buf, "%x", g);
      out += buf;
    }
  }
  out += '/';
  out += std::to_string(length_);
  return out;
}

void Prefix::encode_nlri(ByteWriter& w) const {
  w.u8(length_);
  const std::size_t octets = (static_cast<std::size_t>(length_) + 7) / 8;
  w.bytes(std::span<const std::uint8_t>(addr_.data(), octets));
}

Prefix Prefix::decode_nlri(ByteReader& r, Afi afi) {
  const std::uint8_t length = r.u8();
  const std::size_t max_bits = addr_width(afi) * 8;
  if (length > max_bits) {
    throw WireError("NLRI length " + std::to_string(length) + " exceeds AFI maximum");
  }
  const std::size_t octets = (static_cast<std::size_t>(length) + 7) / 8;
  const auto raw = r.bytes(octets);
  std::array<std::uint8_t, 16> bytes{};
  std::memcpy(bytes.data(), raw.data(), raw.size());
  Prefix p;
  p.afi_ = afi;
  p.length_ = length;
  p.addr_ = bytes;
  p.normalize();
  return p;
}

}  // namespace bgpcu::bgp
