// BGP path attributes (RFC 4271 section 4.3 / 5.1) with the attributes the
// paper's pipeline consumes: ORIGIN, AS_PATH (AS_SET / AS_SEQUENCE, 2- and
// 4-byte encodings), NEXT_HOP, MED, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR,
// COMMUNITIES (RFC 1997), LARGE_COMMUNITIES (RFC 8092). Unrecognized
// attributes survive a decode/encode round trip verbatim.
#ifndef BGPCU_BGP_PATH_ATTRIBUTE_H
#define BGPCU_BGP_PATH_ATTRIBUTE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/asn.h"
#include "bgp/community.h"
#include "bgp/prefix.h"
#include "bgp/wire.h"

namespace bgpcu::bgp {

/// Path attribute type codes (IANA BGP Path Attributes registry).
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMultiExitDisc = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
  kMpReachNlri = 14,
  kMpUnreachNlri = 15,
  kAs4Path = 17,
  kAs4Aggregator = 18,
  kLargeCommunities = 32,
};

/// ORIGIN attribute values.
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// AS_PATH segment types.
enum class SegmentType : std::uint8_t { kAsSet = 1, kAsSequence = 2 };

/// One AS_PATH segment: an ordered sequence or an unordered set (produced by
/// route aggregation).
struct AsPathSegment {
  SegmentType type = SegmentType::kAsSequence;
  std::vector<Asn> asns;

  friend bool operator==(const AsPathSegment&, const AsPathSegment&) = default;
};

/// The AS_PATH attribute: a list of segments. Provides the manipulation
/// primitives the sanitizer needs (AS_SET detection, prepend collapsing) and
/// both 2-byte and 4-byte wire codecs.
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<AsPathSegment> segments) : segments_(std::move(segments)) {}

  /// Builds a pure AS_SEQUENCE path from `asns` (left-most = most recent hop).
  static AsPath from_sequence(std::vector<Asn> asns);

  [[nodiscard]] const std::vector<AsPathSegment>& segments() const noexcept { return segments_; }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// True if any segment is an AS_SET.
  [[nodiscard]] bool has_as_set() const noexcept;

  /// Flattens AS_SEQUENCE segments into a single ASN vector, dropping AS_SET
  /// segments entirely (the paper's sanitation removes AS_SETs, §4.1).
  [[nodiscard]] std::vector<Asn> sequence_asns() const;

  /// Prepends one ASN (as routers do when propagating).
  void prepend(Asn asn);

  /// Left-most ASN of the first AS_SEQUENCE segment, if any.
  [[nodiscard]] std::optional<Asn> first_asn() const noexcept;

  /// "1 2 {3,4} 5" style text form.
  [[nodiscard]] std::string to_string() const;

  /// Encodes with 2-byte (`four_byte = false`, 32-bit ASNs become AS_TRANS)
  /// or 4-byte ASN encoding.
  void encode(ByteWriter& w, bool four_byte) const;

  /// Decodes a whole attribute body.
  static AsPath decode(ByteReader r, bool four_byte);

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsPathSegment> segments_;
};

/// An attribute this library does not model; preserved byte-for-byte.
struct UnknownAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> body;

  friend bool operator==(const UnknownAttribute&, const UnknownAttribute&) = default;
};

/// MP_REACH_NLRI (RFC 4760 section 3): multiprotocol announcements — how
/// IPv6 routes travel in BGP UPDATEs. SAFI is fixed to unicast (1).
struct MpReach {
  Afi afi = Afi::kIpv6;
  std::vector<std::uint8_t> next_hop;  ///< 16 or 32 bytes for IPv6.
  std::vector<Prefix> nlri;

  friend bool operator==(const MpReach&, const MpReach&) = default;
};

/// MP_UNREACH_NLRI (RFC 4760 section 4): multiprotocol withdrawals.
struct MpUnreach {
  Afi afi = Afi::kIpv6;
  std::vector<Prefix> withdrawn;

  friend bool operator==(const MpUnreach&, const MpUnreach&) = default;
};

/// Decoded path-attribute block of one UPDATE / RIB entry.
///
/// Regular and large communities are held separately because they travel in
/// distinct attributes; `all_communities()` produces the merged view the
/// inference pipeline works on.
struct PathAttributes {
  std::optional<Origin> origin;
  std::optional<AsPath> as_path;
  std::optional<std::uint32_t> next_hop;  ///< IPv4 next hop, host order.
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<std::pair<Asn, std::uint32_t>> aggregator;  ///< (ASN, IPv4 addr).
  CommunitySet communities;        ///< RFC 1997 values (kind == kRegular).
  CommunitySet large_communities;  ///< RFC 8092 values (kind == kLarge).
  std::optional<MpReach> mp_reach;      ///< RFC 4760 announcements (IPv6).
  std::optional<MpUnreach> mp_unreach;  ///< RFC 4760 withdrawals (IPv6).
  std::vector<UnknownAttribute> unknown;

  /// Merged regular + large communities in wire order.
  [[nodiscard]] CommunitySet all_communities() const;

  /// Serializes all present attributes. `four_byte` selects AS_PATH ASN width
  /// (BGP4MP_MESSAGE vs BGP4MP_MESSAGE_AS4 / TABLE_DUMP_V2, which is always
  /// 4-byte).
  void encode(ByteWriter& w, bool four_byte) const;

  /// Decodes an attribute block of exactly `r.remaining()` bytes.
  static PathAttributes decode(ByteReader r, bool four_byte);

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;
};

}  // namespace bgpcu::bgp

#endif  // BGPCU_BGP_PATH_ATTRIBUTE_H
