// IPv4/IPv6 prefix model with text parsing/formatting and the wire helpers
// BGP NLRI encoding needs (RFC 4271 section 4.3: length-prefixed, minimal
// octets).
#ifndef BGPCU_BGP_PREFIX_H
#define BGPCU_BGP_PREFIX_H

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "bgp/wire.h"

namespace bgpcu::bgp {

/// Address family of a prefix.
enum class Afi : std::uint16_t { kIpv4 = 1, kIpv6 = 2 };

/// An IP prefix (address + mask length). IPv4 addresses occupy the first 4
/// bytes of `addr`; unused trailing bytes are zero. Prefixes are normalized
/// on construction: bits beyond `length` are cleared so equality and hashing
/// are well-defined.
class Prefix {
 public:
  Prefix() = default;

  /// Builds an IPv4 prefix from a host-order 32-bit address.
  static Prefix ipv4(std::uint32_t addr, std::uint8_t length);

  /// Builds an IPv6 prefix from 16 raw bytes.
  static Prefix ipv6(const std::array<std::uint8_t, 16>& addr, std::uint8_t length);

  /// Parses "a.b.c.d/len" or an IPv6 "hex:hex::/len" form. Throws WireError
  /// on malformed text.
  static Prefix parse(const std::string& text);

  [[nodiscard]] Afi afi() const noexcept { return afi_; }
  [[nodiscard]] std::uint8_t length() const noexcept { return length_; }
  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const noexcept { return addr_; }

  /// Host-order IPv4 address; only meaningful when afi() == kIpv4.
  [[nodiscard]] std::uint32_t ipv4_addr() const noexcept;

  /// True if `other` is equal to or more specific than (contained in) *this.
  [[nodiscard]] bool contains(const Prefix& other) const noexcept;

  /// Canonical "addr/len" text form.
  [[nodiscard]] std::string to_string() const;

  /// Encodes as BGP NLRI: one length octet followed by ceil(length/8)
  /// address octets.
  void encode_nlri(ByteWriter& w) const;

  /// Decodes one NLRI entry for the given address family.
  static Prefix decode_nlri(ByteReader& r, Afi afi);

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  void normalize() noexcept;

  Afi afi_ = Afi::kIpv4;
  std::uint8_t length_ = 0;
  std::array<std::uint8_t, 16> addr_{};
};

}  // namespace bgpcu::bgp

template <>
struct std::hash<bgpcu::bgp::Prefix> {
  std::size_t operator()(const bgpcu::bgp::Prefix& p) const noexcept {
    std::size_t h = static_cast<std::size_t>(p.afi()) * 1315423911u + p.length();
    for (auto b : p.bytes()) h = h * 1099511628211ull + b;
    return h;
  }
};

#endif  // BGPCU_BGP_PREFIX_H
