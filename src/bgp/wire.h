// Bounds-checked big-endian (network byte order) wire codec used by the BGP
// and MRT substrates. All multi-byte integers on the wire are big-endian per
// RFC 4271 / RFC 6396.
#ifndef BGPCU_BGP_WIRE_H
#define BGPCU_BGP_WIRE_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgpcu::bgp {

/// Thrown when a decoder runs past the end of its buffer or encounters a
/// structurally invalid field. Carries a human-readable context string.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential reader over an immutable byte buffer. Every accessor checks
/// bounds and throws WireError on underrun; there is no undefined behavior on
/// malformed (e.g. truncated) input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();

  /// Returns a view of the next `n` bytes and advances past them.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);

  /// Skips `n` bytes.
  void skip(std::size_t n);

  /// Returns a sub-reader over the next `n` bytes and advances past them.
  /// Used to hard-limit nested structures (e.g. a path attribute body) so a
  /// corrupt inner length cannot read past its enclosing record.
  [[nodiscard]] ByteReader sub(std::size_t n);

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian writer. Grows an internal vector; `take()` moves
/// the buffer out.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Reserves a placeholder of `width` bytes (1, 2, or 4) and returns its
  /// offset; `patch_uN` later overwrites it. Used for length fields whose
  /// value is known only after the body is serialized.
  [[nodiscard]] std::size_t placeholder(std::size_t width);
  void patch_u8(std::size_t offset, std::uint8_t v);
  void patch_u16(std::size_t offset, std::uint16_t v);
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace bgpcu::bgp

#endif  // BGPCU_BGP_WIRE_H
