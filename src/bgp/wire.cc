#include "bgp/wire.h"

namespace bgpcu::bgp {

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw WireError("buffer underrun: need " + std::to_string(n) + " bytes, have " +
                    std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const auto v = static_cast<std::uint16_t>((static_cast<std::uint16_t>(data_[pos_]) << 8) |
                                            data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  require(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

ByteReader ByteReader::sub(std::size_t n) { return ByteReader(bytes(n)); }

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::size_t ByteWriter::placeholder(std::size_t width) {
  const std::size_t off = buf_.size();
  buf_.insert(buf_.end(), width, 0);
  return off;
}

void ByteWriter::patch_u8(std::size_t offset, std::uint8_t v) { buf_.at(offset) = v; }

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    buf_.at(offset + i) = static_cast<std::uint8_t>(v >> (24 - 8 * i));
  }
}

}  // namespace bgpcu::bgp
