// BGP-4 message framing (RFC 4271 section 4): the 19-byte header with its
// all-ones marker plus the UPDATE body. OPEN and KEEPALIVE are modeled to the
// extent MRT BGP4MP streams need them.
#ifndef BGPCU_BGP_MESSAGE_H
#define BGPCU_BGP_MESSAGE_H

#include <cstdint>
#include <vector>

#include "bgp/path_attribute.h"
#include "bgp/prefix.h"
#include "bgp/wire.h"

namespace bgpcu::bgp {

/// BGP message type codes.
enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

/// Maximum BGP message size (RFC 4271). The encoder enforces this; split
/// NLRI across messages to stay within it.
inline constexpr std::size_t kMaxMessageSize = 4096;

/// A BGP UPDATE: withdrawn prefixes, a path-attribute block, and announced
/// NLRI sharing those attributes. Only IPv4 NLRI travels in the classic
/// UPDATE fields; this is what the collector simulation emits.
struct UpdateMessage {
  std::vector<Prefix> withdrawn;
  PathAttributes attributes;
  std::vector<Prefix> nlri;

  /// Serializes including the 19-byte header. `four_byte` selects the
  /// AS_PATH ASN width negotiated by the (simulated) session.
  [[nodiscard]] std::vector<std::uint8_t> encode(bool four_byte) const;

  /// Parses a full message (header + body); throws WireError if the message
  /// is not a well-formed UPDATE.
  static UpdateMessage decode(std::span<const std::uint8_t> message, bool four_byte);

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Minimal OPEN body (version, ASN, hold time, BGP identifier; capabilities
/// left empty) — enough to round-trip BGP4MP state-change captures.
struct OpenMessage {
  std::uint8_t version = 4;
  std::uint16_t my_asn = 0;  ///< AS_TRANS when the speaker's ASN is 32-bit.
  std::uint16_t hold_time = 180;
  std::uint32_t bgp_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static OpenMessage decode(std::span<const std::uint8_t> message);

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

/// Encodes a KEEPALIVE (header only).
[[nodiscard]] std::vector<std::uint8_t> encode_keepalive();

/// Reads and validates a message header; returns its type and total length.
struct MessageHeader {
  MessageType type = MessageType::kKeepalive;
  std::uint16_t length = 0;
};
[[nodiscard]] MessageHeader peek_header(std::span<const std::uint8_t> message);

}  // namespace bgpcu::bgp

#endif  // BGPCU_BGP_MESSAGE_H
