// Autonomous System Number taxonomy: 16-bit vs 32-bit ASNs and the IANA
// special-purpose ranges the paper's sanitation and community grouping rely
// on (private, reserved, documentation, AS_TRANS).
#ifndef BGPCU_BGP_ASN_H
#define BGPCU_BGP_ASN_H

#include <cstdint>
#include <string>

namespace bgpcu::bgp {

/// An Autonomous System Number. 32-bit per RFC 6793; values <= 65535 are
/// classic 16-bit ASNs.
using Asn = std::uint32_t;

/// AS_TRANS (RFC 6793): placeholder 16-bit ASN used where a 4-byte ASN does
/// not fit in a 2-byte field.
inline constexpr Asn kAsTrans = 23456;

/// Returns true if `asn` fits in the classic 16-bit ASN space.
[[nodiscard]] constexpr bool is_16bit_asn(Asn asn) noexcept { return asn <= 0xFFFF; }

/// Returns true if `asn` requires 4-byte encoding (RFC 6793).
[[nodiscard]] constexpr bool is_32bit_asn(Asn asn) noexcept { return asn > 0xFFFF; }

/// Private-use ASNs: 64512-65534 (RFC 6996) and 4200000000-4294967294.
[[nodiscard]] constexpr bool is_private_asn(Asn asn) noexcept {
  return (asn >= 64512 && asn <= 65534) || (asn >= 4200000000u && asn <= 4294967294u);
}

/// Documentation ASNs: 64496-64511 and 65536-65551 (RFC 5398).
[[nodiscard]] constexpr bool is_documentation_asn(Asn asn) noexcept {
  return (asn >= 64496 && asn <= 64511) || (asn >= 65536 && asn <= 65551);
}

/// Reserved ASNs: 0 (RFC 7607), 65535 (RFC 7300), 4294967295 (RFC 7300) and
/// AS_TRANS which never identifies a real network.
[[nodiscard]] constexpr bool is_reserved_asn(Asn asn) noexcept {
  return asn == 0 || asn == 65535 || asn == 4294967295u || asn == kAsTrans;
}

/// An ASN that can never identify a public network: private, reserved, or
/// documentation. The paper's community grouping treats communities whose
/// upper field falls in these ranges as `private` (Section 3.2).
[[nodiscard]] constexpr bool is_special_purpose_asn(Asn asn) noexcept {
  return is_private_asn(asn) || is_documentation_asn(asn) || is_reserved_asn(asn);
}

/// Formats an ASN in the canonical "asplain" decimal notation (RFC 5396).
[[nodiscard]] inline std::string asn_to_string(Asn asn) { return std::to_string(asn); }

}  // namespace bgpcu::bgp

#endif  // BGPCU_BGP_ASN_H
