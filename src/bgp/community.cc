#include "bgp/community.h"

#include <algorithm>
#include <charconv>

#include "bgp/wire.h"

namespace bgpcu::bgp {

namespace {

std::uint64_t parse_field(std::string_view text, std::uint64_t max, const std::string& ctx) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || ec != std::errc() || ptr != text.data() + text.size() || value > max) {
    throw WireError("invalid community field in '" + ctx + "'");
  }
  return value;
}

}  // namespace

std::string CommunityValue::to_string() const {
  std::string out = std::to_string(upper);
  out += ':';
  out += std::to_string(low1);
  if (kind == CommunityKind::kLarge) {
    out += ':';
    out += std::to_string(low2);
  }
  return out;
}

CommunityValue CommunityValue::parse(const std::string& text) {
  const auto c1 = text.find(':');
  if (c1 == std::string::npos) throw WireError("community missing ':': " + text);
  const auto c2 = text.find(':', c1 + 1);
  const std::string_view f1(text.data(), c1);
  if (c2 == std::string::npos) {
    const std::string_view f2(text.data() + c1 + 1, text.size() - c1 - 1);
    const auto admin = parse_field(f1, 0xFFFF, text);
    const auto value = parse_field(f2, 0xFFFF, text);
    return regular(static_cast<std::uint16_t>(admin), static_cast<std::uint16_t>(value));
  }
  const std::string_view f2(text.data() + c1 + 1, c2 - c1 - 1);
  const std::string_view f3(text.data() + c2 + 1, text.size() - c2 - 1);
  const auto admin = parse_field(f1, 0xFFFFFFFFull, text);
  const auto v1 = parse_field(f2, 0xFFFFFFFFull, text);
  const auto v2 = parse_field(f3, 0xFFFFFFFFull, text);
  return large(static_cast<Asn>(admin), static_cast<std::uint32_t>(v1),
               static_cast<std::uint32_t>(v2));
}

void normalize(CommunitySet& set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
}

bool contains_upper(const CommunitySet& set, Asn asn) noexcept {
  return std::any_of(set.begin(), set.end(),
                     [asn](const CommunityValue& c) { return c.upper == asn; });
}

}  // namespace bgpcu::bgp
