#include "bgp/path_attribute.h"

#include <algorithm>

namespace bgpcu::bgp {

namespace {

// Attribute flag bits (RFC 4271 section 4.3).
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// Writes one attribute with automatic extended-length selection.
void write_attribute(ByteWriter& w, std::uint8_t flags, AttrType type,
                     const std::vector<std::uint8_t>& body) {
  const bool extended = body.size() > 0xFF;
  w.u8(static_cast<std::uint8_t>(flags | (extended ? kFlagExtendedLength : 0)));
  w.u8(static_cast<std::uint8_t>(type));
  if (extended) {
    w.u16(static_cast<std::uint16_t>(body.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(body.size()));
  }
  w.bytes(body);
}

std::vector<std::uint8_t> build_body(const auto& fill) {
  ByteWriter w;
  fill(w);
  return w.take();
}

}  // namespace

AsPath AsPath::from_sequence(std::vector<Asn> asns) {
  AsPath p;
  if (!asns.empty()) {
    p.segments_.push_back(AsPathSegment{SegmentType::kAsSequence, std::move(asns)});
  }
  return p;
}

bool AsPath::has_as_set() const noexcept {
  return std::any_of(segments_.begin(), segments_.end(),
                     [](const AsPathSegment& s) { return s.type == SegmentType::kAsSet; });
}

std::vector<Asn> AsPath::sequence_asns() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_) {
    if (seg.type == SegmentType::kAsSequence) {
      out.insert(out.end(), seg.asns.begin(), seg.asns.end());
    }
  }
  return out;
}

void AsPath::prepend(Asn asn) {
  if (!segments_.empty() && segments_.front().type == SegmentType::kAsSequence &&
      segments_.front().asns.size() < 255) {
    segments_.front().asns.insert(segments_.front().asns.begin(), asn);
  } else {
    segments_.insert(segments_.begin(), AsPathSegment{SegmentType::kAsSequence, {asn}});
  }
}

std::optional<Asn> AsPath::first_asn() const noexcept {
  for (const auto& seg : segments_) {
    if (seg.type == SegmentType::kAsSequence && !seg.asns.empty()) return seg.asns.front();
  }
  return std::nullopt;
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (seg.type == SegmentType::kAsSet) {
      if (!out.empty()) out += ' ';
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    } else {
      for (const Asn asn : seg.asns) {
        if (!out.empty()) out += ' ';
        out += std::to_string(asn);
      }
    }
  }
  return out;
}

void AsPath::encode(ByteWriter& w, bool four_byte) const {
  for (const auto& seg : segments_) {
    if (seg.asns.size() > 255) throw WireError("AS_PATH segment exceeds 255 ASNs");
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (const Asn asn : seg.asns) {
      if (four_byte) {
        w.u32(asn);
      } else {
        w.u16(is_16bit_asn(asn) ? static_cast<std::uint16_t>(asn)
                                : static_cast<std::uint16_t>(kAsTrans));
      }
    }
  }
}

AsPath AsPath::decode(ByteReader r, bool four_byte) {
  std::vector<AsPathSegment> segments;
  while (!r.exhausted()) {
    AsPathSegment seg;
    const std::uint8_t type = r.u8();
    if (type != static_cast<std::uint8_t>(SegmentType::kAsSet) &&
        type != static_cast<std::uint8_t>(SegmentType::kAsSequence)) {
      throw WireError("unknown AS_PATH segment type " + std::to_string(type));
    }
    seg.type = static_cast<SegmentType>(type);
    const std::uint8_t count = r.u8();
    seg.asns.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
      seg.asns.push_back(four_byte ? r.u32() : r.u16());
    }
    segments.push_back(std::move(seg));
  }
  return AsPath(std::move(segments));
}

CommunitySet PathAttributes::all_communities() const {
  CommunitySet out = communities;
  out.insert(out.end(), large_communities.begin(), large_communities.end());
  return out;
}

void PathAttributes::encode(ByteWriter& w, bool four_byte) const {
  if (origin) {
    write_attribute(w, kFlagTransitive, AttrType::kOrigin,
                    build_body([&](ByteWriter& b) { b.u8(static_cast<std::uint8_t>(*origin)); }));
  }
  if (as_path) {
    write_attribute(w, kFlagTransitive, AttrType::kAsPath,
                    build_body([&](ByteWriter& b) { as_path->encode(b, four_byte); }));
  }
  if (next_hop) {
    write_attribute(w, kFlagTransitive, AttrType::kNextHop,
                    build_body([&](ByteWriter& b) { b.u32(*next_hop); }));
  }
  if (med) {
    write_attribute(w, kFlagOptional, AttrType::kMultiExitDisc,
                    build_body([&](ByteWriter& b) { b.u32(*med); }));
  }
  if (local_pref) {
    write_attribute(w, kFlagTransitive, AttrType::kLocalPref,
                    build_body([&](ByteWriter& b) { b.u32(*local_pref); }));
  }
  if (atomic_aggregate) {
    write_attribute(w, kFlagTransitive, AttrType::kAtomicAggregate, {});
  }
  if (aggregator) {
    write_attribute(w, static_cast<std::uint8_t>(kFlagOptional | kFlagTransitive),
                    AttrType::kAggregator, build_body([&](ByteWriter& b) {
                      if (four_byte) {
                        b.u32(aggregator->first);
                      } else {
                        b.u16(is_16bit_asn(aggregator->first)
                                  ? static_cast<std::uint16_t>(aggregator->first)
                                  : static_cast<std::uint16_t>(kAsTrans));
                      }
                      b.u32(aggregator->second);
                    }));
  }
  if (!communities.empty()) {
    write_attribute(w, static_cast<std::uint8_t>(kFlagOptional | kFlagTransitive),
                    AttrType::kCommunities, build_body([&](ByteWriter& b) {
                      for (const auto& c : communities) {
                        if (c.kind != CommunityKind::kRegular) {
                          throw WireError("large community in COMMUNITIES attribute");
                        }
                        b.u32(c.packed_regular());
                      }
                    }));
  }
  if (mp_reach) {
    write_attribute(w, kFlagOptional, AttrType::kMpReachNlri, build_body([&](ByteWriter& b) {
                      b.u16(static_cast<std::uint16_t>(mp_reach->afi));
                      b.u8(1);  // SAFI unicast
                      if (mp_reach->next_hop.size() > 255) {
                        throw WireError("MP_REACH next hop too long");
                      }
                      b.u8(static_cast<std::uint8_t>(mp_reach->next_hop.size()));
                      b.bytes(mp_reach->next_hop);
                      b.u8(0);  // reserved
                      for (const auto& p : mp_reach->nlri) p.encode_nlri(b);
                    }));
  }
  if (mp_unreach) {
    write_attribute(w, kFlagOptional, AttrType::kMpUnreachNlri,
                    build_body([&](ByteWriter& b) {
                      b.u16(static_cast<std::uint16_t>(mp_unreach->afi));
                      b.u8(1);  // SAFI unicast
                      for (const auto& p : mp_unreach->withdrawn) p.encode_nlri(b);
                    }));
  }
  if (!large_communities.empty()) {
    write_attribute(w, static_cast<std::uint8_t>(kFlagOptional | kFlagTransitive),
                    AttrType::kLargeCommunities, build_body([&](ByteWriter& b) {
                      for (const auto& c : large_communities) {
                        if (c.kind != CommunityKind::kLarge) {
                          throw WireError("regular community in LARGE_COMMUNITIES attribute");
                        }
                        b.u32(c.upper);
                        b.u32(c.low1);
                        b.u32(c.low2);
                      }
                    }));
  }
  for (const auto& attr : unknown) {
    write_attribute(w, static_cast<std::uint8_t>(attr.flags & ~kFlagExtendedLength),
                    static_cast<AttrType>(attr.type), attr.body);
  }
}

PathAttributes PathAttributes::decode(ByteReader r, bool four_byte) {
  PathAttributes out;
  while (!r.exhausted()) {
    const std::uint8_t flags = r.u8();
    const std::uint8_t type = r.u8();
    const std::size_t length = (flags & kFlagExtendedLength) ? r.u16() : r.u8();
    ByteReader body = r.sub(length);
    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        const std::uint8_t v = body.u8();
        if (v > 2) throw WireError("invalid ORIGIN value " + std::to_string(v));
        out.origin = static_cast<Origin>(v);
        break;
      }
      case AttrType::kAsPath:
        out.as_path = AsPath::decode(body, four_byte);
        break;
      case AttrType::kNextHop:
        out.next_hop = body.u32();
        break;
      case AttrType::kMultiExitDisc:
        out.med = body.u32();
        break;
      case AttrType::kLocalPref:
        out.local_pref = body.u32();
        break;
      case AttrType::kAtomicAggregate:
        out.atomic_aggregate = true;
        break;
      case AttrType::kAggregator: {
        const Asn asn = four_byte ? body.u32() : body.u16();
        out.aggregator = std::make_pair(asn, body.u32());
        break;
      }
      case AttrType::kCommunities: {
        if (length % 4 != 0) throw WireError("COMMUNITIES length not multiple of 4");
        out.communities.reserve(length / 4);
        while (!body.exhausted()) {
          out.communities.push_back(CommunityValue::from_packed_regular(body.u32()));
        }
        break;
      }
      case AttrType::kMpReachNlri: {
        MpReach mp;
        const std::uint16_t afi = body.u16();
        if (afi != 1 && afi != 2) throw WireError("MP_REACH bad AFI " + std::to_string(afi));
        mp.afi = static_cast<Afi>(afi);
        const std::uint8_t safi = body.u8();
        if (safi != 1) throw WireError("MP_REACH unsupported SAFI " + std::to_string(safi));
        const std::uint8_t nh_len = body.u8();
        const auto nh = body.bytes(nh_len);
        mp.next_hop.assign(nh.begin(), nh.end());
        body.skip(1);  // reserved
        while (!body.exhausted()) mp.nlri.push_back(Prefix::decode_nlri(body, mp.afi));
        out.mp_reach = std::move(mp);
        break;
      }
      case AttrType::kMpUnreachNlri: {
        MpUnreach mp;
        const std::uint16_t afi = body.u16();
        if (afi != 1 && afi != 2) throw WireError("MP_UNREACH bad AFI " + std::to_string(afi));
        mp.afi = static_cast<Afi>(afi);
        const std::uint8_t safi = body.u8();
        if (safi != 1) throw WireError("MP_UNREACH unsupported SAFI " + std::to_string(safi));
        while (!body.exhausted()) mp.withdrawn.push_back(Prefix::decode_nlri(body, mp.afi));
        out.mp_unreach = std::move(mp);
        break;
      }
      case AttrType::kLargeCommunities: {
        if (length % 12 != 0) throw WireError("LARGE_COMMUNITIES length not multiple of 12");
        out.large_communities.reserve(length / 12);
        while (!body.exhausted()) {
          const Asn admin = body.u32();
          const std::uint32_t v1 = body.u32();
          const std::uint32_t v2 = body.u32();
          out.large_communities.push_back(CommunityValue::large(admin, v1, v2));
        }
        break;
      }
      default: {
        const auto raw = body.bytes(body.remaining());
        out.unknown.push_back(
            UnknownAttribute{flags, type, std::vector<std::uint8_t>(raw.begin(), raw.end())});
        break;
      }
    }
  }
  return out;
}

}  // namespace bgpcu::bgp
