#include "api/wire.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/database.h"

namespace bgpcu::api {

namespace {

// ------------------------------------------------------------ primitives --

/// Unsigned LEB128: 7 value bits per byte, high bit = continuation. At most
/// 10 bytes encode a u64.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// IEEE-754 bit pattern, big-endian — stable across hosts.
void put_f64(std::vector<std::uint8_t>& out, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

/// Bounds-checked reader; every underrun or malformed primitive throws
/// WireFormatError (the decoders' single failure currency).
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const noexcept { return data.size() - pos; }

  void require(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw WireFormatError(std::string("truncated wire input reading ") + what);
    }
  }

  std::uint8_t u8(const char* what) {
    require(1, what);
    return data[pos++];
  }

  std::span<const std::uint8_t> bytes(std::size_t n, const char* what) {
    require(n, what);
    const auto view = data.subspan(pos, n);
    pos += n;
    return view;
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const auto byte = u8(what);
      if (shift == 63 && (byte & 0xFE)) {
        throw WireFormatError(std::string("varint overflow in ") + what);
      }
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
    }
    throw WireFormatError(std::string("varint too long in ") + what);
  }

  double f64(const char* what) {
    const auto raw = bytes(8, what);
    std::uint64_t bits = 0;
    for (const auto byte : raw) bits = (bits << 8) | byte;
    return std::bit_cast<double>(bits);
  }
};

// ---------------------------------------------------------------- framing --

void put_frame_header(std::vector<std::uint8_t>& out, FrameType type) {
  out.insert(out.end(), kWireMagic.begin(), kWireMagic.end());
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
}

/// Finishes a frame started with put_frame_header: everything appended after
/// the header becomes the payload, prefixed with its varint length.
std::vector<std::uint8_t> seal_frame(FrameType type, std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 16);
  put_frame_header(frame, type);
  put_varint(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Frame parse_frame(Reader& r) {
  const auto magic = r.bytes(kWireMagic.size(), "frame magic");
  if (!std::equal(magic.begin(), magic.end(), kWireMagic.begin())) {
    throw WireFormatError("not a bgpcu wire frame (bad magic)");
  }
  const auto version = r.u8("frame version");
  if (version == 0 || version > kWireVersion) {
    throw WireFormatError("unsupported wire version " + std::to_string(version) +
                          " (this build reads <= " + std::to_string(kWireVersion) + ")");
  }
  const auto type_byte = r.u8("frame type");
  if (type_byte < 1 || type_byte > kMaxFrameType) {
    throw WireFormatError("unknown frame type " + std::to_string(type_byte));
  }
  const auto start = r.pos;
  const auto length = r.varint("frame payload length");
  if (length > r.remaining()) {
    throw WireFormatError("truncated frame: payload claims " + std::to_string(length) +
                          " bytes, " + std::to_string(r.remaining()) + " available");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload = r.bytes(length, "frame payload");
  frame.size = kWireMagic.size() + 2 + (r.pos - start);
  return frame;
}

/// Decodes the single frame that must span `data` exactly, checking its type.
Frame expect_single_frame(std::span<const std::uint8_t> data, FrameType type,
                          const char* what) {
  Reader r{data};
  const auto frame = parse_frame(r);
  if (frame.type != type) {
    throw WireFormatError(std::string("expected a ") + what + " frame, got type " +
                          std::to_string(static_cast<int>(frame.type)));
  }
  if (r.remaining() != 0) {
    throw WireFormatError(std::string("trailing garbage after ") + what + " frame");
  }
  return frame;
}

void expect_exhausted(const Reader& r, const char* what) {
  if (r.remaining() != 0) {
    throw WireFormatError(std::string("trailing garbage inside ") + what + " payload");
  }
}

// ------------------------------------------------------- shared payloads --

void put_counters(std::vector<std::uint8_t>& out, const core::UsageCounters& k) {
  put_varint(out, k.t);
  put_varint(out, k.s);
  put_varint(out, k.f);
  put_varint(out, k.c);
}

core::UsageCounters get_counters(Reader& r) {
  core::UsageCounters k;
  k.t = r.varint("counter t");
  k.s = r.varint("counter s");
  k.f = r.varint("counter f");
  k.c = r.varint("counter c");
  return k;
}

/// Class byte: tagging in the high nibble, forwarding in the low, enum
/// values 0..3 each.
std::uint8_t class_byte(const core::UsageClass& usage) {
  return static_cast<std::uint8_t>((static_cast<unsigned>(usage.tagging) << 4) |
                                   static_cast<unsigned>(usage.forwarding));
}

core::UsageClass get_class(Reader& r) {
  const auto byte = r.u8("class byte");
  const auto tagging = byte >> 4;
  const auto forwarding = byte & 0x0F;
  if (tagging > 3 || forwarding > 3) {
    throw WireFormatError("invalid class byte " + std::to_string(byte));
  }
  return {static_cast<core::TaggingClass>(tagging),
          static_cast<core::ForwardingClass>(forwarding)};
}

/// Reads one delta-encoded ASN in an ascending sequence. `prev` is nullopt
/// for the first entry (absolute); later entries must strictly increase.
bgp::Asn get_asn_delta(Reader& r, std::optional<std::uint64_t>& prev) {
  const auto delta = r.varint("asn delta");
  std::uint64_t asn = delta;
  if (prev) {
    if (delta == 0) throw WireFormatError("duplicate ASN in wire record sequence");
    asn = *prev + delta;
  }
  if (asn > 0xFFFFFFFFull) {
    throw WireFormatError("ASN " + std::to_string(asn) + " out of 32-bit range");
  }
  prev = asn;
  return static_cast<bgp::Asn>(asn);
}

void put_snapshot_payload(std::vector<std::uint8_t>& out,
                          const core::InferenceResult& result) {
  const auto& th = result.thresholds();
  put_f64(out, th.tagger);
  put_f64(out, th.silent);
  put_f64(out, th.forward);
  put_f64(out, th.cleaner);
  put_varint(out, result.columns_swept());

  std::vector<std::pair<bgp::Asn, core::UsageCounters>> rows(
      result.counter_map().begin(), result.counter_map().end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  put_varint(out, rows.size());
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& [asn, counters] : rows) {
    put_varint(out, first ? asn : asn - prev);
    put_counters(out, counters);
    prev = asn;
    first = false;
  }
}

core::InferenceResult get_snapshot_payload(Reader& r) {
  core::Thresholds th;
  th.tagger = r.f64("threshold tagger");
  th.silent = r.f64("threshold silent");
  th.forward = r.f64("threshold forward");
  th.cleaner = r.f64("threshold cleaner");
  const auto columns = r.varint("columns swept");
  const auto count = r.varint("record count");

  core::CounterMap counters;
  counters.reserve(count < (1u << 20) ? count : (1u << 20));
  std::optional<std::uint64_t> prev;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto asn = get_asn_delta(r, prev);
    counters.emplace(asn, get_counters(r));
  }
  return core::InferenceResult(std::move(counters), th, static_cast<std::size_t>(columns));
}

void put_delta_payload(std::vector<std::uint8_t>& out, const EpochDelta& delta) {
  put_varint(out, delta.epoch);
  put_varint(out, delta.changes.size());
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& change : delta.changes) {
    // The delta encoding needs strictly ascending ASNs (diff_classifications
    // emits them that way); fail at encode time, not at every later decode.
    if (!first && change.asn <= prev) {
      throw WireFormatError("delta changes must be sorted by strictly ascending ASN");
    }
    put_varint(out, first ? change.asn : change.asn - prev);
    out.push_back(class_byte(change.before));
    out.push_back(class_byte(change.after));
    prev = change.asn;
    first = false;
  }
}

EpochDelta get_delta_payload(Reader& r) {
  EpochDelta delta;
  delta.epoch = r.varint("epoch");
  const auto count = r.varint("change count");
  delta.changes.reserve(count < (1u << 20) ? count : (1u << 20));
  std::optional<std::uint64_t> prev;
  for (std::uint64_t i = 0; i < count; ++i) {
    stream::ClassChange change;
    change.asn = get_asn_delta(r, prev);
    change.before = get_class(r);
    change.after = get_class(r);
    delta.changes.push_back(change);
  }
  return delta;
}

/// Length-prefixed UTF-8-agnostic byte string (auth tokens, error messages).
/// Capped well below any frame limit so a corrupt length cannot balloon.
constexpr std::uint64_t kMaxStringBytes = 4096;

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  if (text.size() > kMaxStringBytes) {
    throw WireFormatError("wire string longer than " + std::to_string(kMaxStringBytes) +
                          " bytes");
  }
  put_varint(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
}

std::string get_string(Reader& r, const char* what) {
  const auto length = r.varint(what);
  if (length > kMaxStringBytes) {
    throw WireFormatError(std::string("wire string too long in ") + what);
  }
  const auto raw = r.bytes(static_cast<std::size_t>(length), what);
  return {raw.begin(), raw.end()};
}

/// A transition-spec side: 0x00 for "*", else 0x01 + the two code chars.
void put_code_spec(std::vector<std::uint8_t>& out, const std::string& code) {
  if (code == "*") {
    out.push_back(0);
    return;
  }
  if (!SubscriptionFilter::valid_code(code)) {
    throw WireFormatError("invalid class code spec '" + code + "'");
  }
  out.push_back(1);
  out.push_back(static_cast<std::uint8_t>(code[0]));
  out.push_back(static_cast<std::uint8_t>(code[1]));
}

std::string get_code_spec(Reader& r, const char* what) {
  const auto tag = r.u8(what);
  if (tag == 0) return "*";
  if (tag != 1) throw WireFormatError(std::string("invalid code-spec tag in ") + what);
  const auto raw = r.bytes(2, what);
  std::string code{static_cast<char>(raw[0]), static_cast<char>(raw[1])};
  if (!SubscriptionFilter::valid_code(code)) {
    throw WireFormatError(std::string("invalid class code in ") + what);
  }
  return code;
}

// ----------------------------------------------------------- frame codecs --

}  // namespace

std::optional<Frame> FrameReader::next() {
  if (pos_ >= data_.size()) return std::nullopt;
  Reader r{data_, pos_};
  const auto frame = parse_frame(r);
  pos_ = r.pos;
  return frame;
}

std::optional<Frame> try_parse_frame(std::span<const std::uint8_t> data,
                                     std::size_t max_payload) {
  // Validate the header byte-by-byte as far as the buffer reaches: a prefix
  // that can never become a valid frame must throw *now* (the transport
  // would otherwise wait forever for more bytes that cannot help).
  const auto have = data.size();
  for (std::size_t i = 0; i < kWireMagic.size(); ++i) {
    if (i >= have) return std::nullopt;
    if (data[i] != kWireMagic[i]) {
      throw WireFormatError("not a bgpcu wire frame (bad magic)");
    }
  }
  if (have < 5) return std::nullopt;
  const auto version = data[4];
  if (version == 0 || version > kWireVersion) {
    throw WireFormatError("unsupported wire version " + std::to_string(version) +
                          " (this build reads <= " + std::to_string(kWireVersion) + ")");
  }
  if (have < 6) return std::nullopt;
  const auto type_byte = data[5];
  if (type_byte < 1 || type_byte > kMaxFrameType) {
    throw WireFormatError("unknown frame type " + std::to_string(type_byte));
  }
  // Payload length varint, parsed incrementally.
  std::uint64_t length = 0;
  std::size_t pos = 6;
  for (unsigned shift = 0;; shift += 7) {
    if (shift >= 64) throw WireFormatError("varint too long in frame payload length");
    if (pos >= have) return std::nullopt;
    const auto byte = data[pos++];
    if (shift == 63 && (byte & 0xFE)) {
      throw WireFormatError("varint overflow in frame payload length");
    }
    length |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
  }
  if (length > max_payload) {
    throw WireFormatError("frame payload length " + std::to_string(length) +
                          " exceeds the " + std::to_string(max_payload) + "-byte cap");
  }
  if (have - pos < length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload = data.subspan(pos, static_cast<std::size_t>(length));
  frame.size = pos + static_cast<std::size_t>(length);
  return frame;
}

FrameType peek_frame_type(std::span<const std::uint8_t> data) {
  Reader r{data};
  return parse_frame(r).type;
}

std::vector<std::uint8_t> encode_snapshot(const core::InferenceResult& result) {
  std::vector<std::uint8_t> payload;
  payload.reserve(result.counter_map().size() * 8 + 64);
  put_snapshot_payload(payload, result);
  return seal_frame(FrameType::kSnapshot, std::move(payload));
}

core::InferenceResult decode_snapshot(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kSnapshot, "snapshot");
  Reader r{parsed.payload};
  auto result = get_snapshot_payload(r);
  expect_exhausted(r, "snapshot");
  return result;
}

std::vector<std::uint8_t> encode_delta_batch(const EpochDelta& delta) {
  std::vector<std::uint8_t> payload;
  payload.reserve(delta.changes.size() * 4 + 16);
  put_delta_payload(payload, delta);
  return seal_frame(FrameType::kDeltaBatch, std::move(payload));
}

EpochDelta decode_delta_batch(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kDeltaBatch, "delta batch");
  Reader r{parsed.payload};
  auto delta = get_delta_payload(r);
  expect_exhausted(r, "delta batch");
  return delta;
}

std::vector<std::uint8_t> encode_query_request(const QueryRequest& request) {
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(request.kind));
  if (request.kind == QueryKind::kClassOf || request.kind == QueryKind::kLiveCounters ||
      request.kind == QueryKind::kHistory) {
    put_varint(payload, request.asn);
  }
  return seal_frame(FrameType::kQueryRequest, std::move(payload));
}

namespace {

QueryKind get_query_kind(Reader& r) {
  const auto byte = r.u8("query kind");
  if (byte < 1 || byte > 6) {
    throw WireFormatError("unknown query kind " + std::to_string(byte));
  }
  return static_cast<QueryKind>(byte);
}

}  // namespace

QueryRequest decode_query_request(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kQueryRequest, "query request");
  Reader r{parsed.payload};
  QueryRequest request;
  request.kind = get_query_kind(r);
  if (request.kind == QueryKind::kClassOf || request.kind == QueryKind::kLiveCounters ||
      request.kind == QueryKind::kHistory) {
    const auto asn = r.varint("query asn");
    if (asn > 0xFFFFFFFFull) {
      throw WireFormatError("query ASN out of 32-bit range");
    }
    request.asn = static_cast<bgp::Asn>(asn);
  }
  expect_exhausted(r, "query request");
  return request;
}

namespace {

// Metrics scrape payload (QueryKind::kMetrics). Decode caps are deliberate:
// a scrape is bounded by the instrument catalog, so a frame claiming
// thousands of families or oversized histograms is corrupt (or hostile),
// never legitimate.
constexpr std::uint64_t kMaxMetricFamilies = 4096;
constexpr std::uint64_t kMaxMetricSeries = 4096;
constexpr std::uint64_t kMaxHistogramBuckets = 64;

void put_metrics_payload(std::vector<std::uint8_t>& out, const obs::Snapshot& snapshot) {
  put_varint(out, snapshot.size());
  for (const auto& family : snapshot) {
    put_string(out, family.name);
    put_string(out, family.help);
    out.push_back(static_cast<std::uint8_t>(family.type));
    put_varint(out, family.series.size());
    for (const auto& series : family.series) {
      put_string(out, series.labels);
      if (family.type == obs::MetricType::kHistogram) {
        const auto& hist = series.hist.value();
        put_varint(out, hist.buckets.size());
        for (const auto bucket : hist.buckets) put_varint(out, bucket);
        put_varint(out, hist.count);
        put_varint(out, hist.sum);
      } else {
        put_f64(out, series.value);
      }
    }
  }
}

obs::Snapshot get_metrics_payload(Reader& r) {
  const auto family_count = r.varint("metrics family count");
  if (family_count > kMaxMetricFamilies) {
    throw WireFormatError("metrics family count exceeds the cap");
  }
  obs::Snapshot snapshot;
  snapshot.reserve(static_cast<std::size_t>(family_count));
  for (std::uint64_t f = 0; f < family_count; ++f) {
    obs::Family family;
    family.name = get_string(r, "metric family name");
    family.help = get_string(r, "metric family help");
    const auto type_byte = r.u8("metric family type");
    if (type_byte < 1 || type_byte > 3) {
      throw WireFormatError("unknown metric type " + std::to_string(type_byte));
    }
    family.type = static_cast<obs::MetricType>(type_byte);
    const auto series_count = r.varint("metric series count");
    if (series_count > kMaxMetricSeries) {
      throw WireFormatError("metric series count exceeds the cap");
    }
    family.series.reserve(static_cast<std::size_t>(series_count));
    for (std::uint64_t s = 0; s < series_count; ++s) {
      obs::Series series;
      series.labels = get_string(r, "metric series labels");
      if (family.type == obs::MetricType::kHistogram) {
        const auto buckets = r.varint("histogram bucket count");
        if (buckets > kMaxHistogramBuckets) {
          throw WireFormatError("histogram bucket count exceeds the cap");
        }
        obs::HistogramData hist;
        hist.buckets.reserve(static_cast<std::size_t>(buckets));
        for (std::uint64_t b = 0; b < buckets; ++b) {
          hist.buckets.push_back(r.varint("histogram bucket"));
        }
        hist.count = r.varint("histogram count");
        hist.sum = r.varint("histogram sum");
        series.hist = std::move(hist);
      } else {
        series.value = r.f64("metric value");
      }
      family.series.push_back(std::move(series));
    }
    snapshot.push_back(std::move(family));
  }
  return snapshot;
}

/// Body shared by kQueryResponse (artifact) and kResponse (tagged network)
/// frames — same payload, different envelope.
void put_query_response_payload(std::vector<std::uint8_t>& payload,
                                const QueryResponse& response) {
  payload.push_back(static_cast<std::uint8_t>(response.kind));
  switch (response.kind) {
    case QueryKind::kClassOf:
    case QueryKind::kLiveCounters: {
      if (!response.asn_class) {
        throw WireFormatError("per-ASN query response missing asn_class");
      }
      put_varint(payload, response.asn_class->asn);
      payload.push_back(class_byte(response.asn_class->usage));
      put_counters(payload, response.asn_class->counters);
      break;
    }
    case QueryKind::kSnapshot: {
      if (!response.snapshot) {
        throw WireFormatError("snapshot query response missing snapshot");
      }
      put_snapshot_payload(payload, *response.snapshot);
      break;
    }
    case QueryKind::kStats: {
      if (!response.stats) throw WireFormatError("stats query response missing stats");
      put_varint(payload, response.stats->epoch);
      put_varint(payload, response.stats->live_tuples);
      put_varint(payload, response.stats->evicted_total);
      put_varint(payload, response.stats->shards);
      put_varint(payload, response.stats->window_epochs);
      put_varint(payload, response.stats->subscriptions);
      put_varint(payload, response.stats->snapshot_sweeps);
      put_varint(payload, response.stats->snapshot_cache_hits);
      put_varint(payload, response.stats->index_deltas_applied);
      put_varint(payload, response.stats->index_compactions);
      put_varint(payload, response.stats->index_rebuilds);
      put_varint(payload, response.stats->locked_ns_last);
      put_varint(payload, response.stats->locked_ns_total);
      break;
    }
    case QueryKind::kMetrics: {
      if (!response.metrics) {
        throw WireFormatError("metrics query response missing metrics");
      }
      put_metrics_payload(payload, *response.metrics);
      break;
    }
    case QueryKind::kHistory: {
      if (!response.history) {
        throw WireFormatError("history query response missing history");
      }
      put_varint(payload, response.history->size());
      std::uint64_t prev = 0;
      bool first = true;
      for (const auto& point : *response.history) {
        // Epochs ascend strictly (the Service's response invariant), so the
        // sequence delta-encodes like the ASN lists do.
        if (!first && point.epoch <= prev) {
          throw WireFormatError("history points must be sorted by strictly ascending epoch");
        }
        put_varint(payload, first ? point.epoch : point.epoch - prev);
        payload.push_back(class_byte(point.usage));
        prev = point.epoch;
        first = false;
      }
      break;
    }
  }
}

QueryResponse get_query_response_payload(Reader& r) {
  QueryResponse response;
  response.kind = get_query_kind(r);
  switch (response.kind) {
    case QueryKind::kClassOf:
    case QueryKind::kLiveCounters: {
      AsnClass info;
      const auto asn = r.varint("response asn");
      if (asn > 0xFFFFFFFFull) {
        throw WireFormatError("response ASN out of 32-bit range");
      }
      info.asn = static_cast<bgp::Asn>(asn);
      info.usage = get_class(r);
      info.counters = get_counters(r);
      response.asn_class = info;
      break;
    }
    case QueryKind::kSnapshot:
      response.snapshot =
          std::make_shared<const core::InferenceResult>(get_snapshot_payload(r));
      break;
    case QueryKind::kStats: {
      ServiceStats stats;
      stats.epoch = r.varint("stats epoch");
      stats.live_tuples = r.varint("stats live_tuples");
      stats.evicted_total = r.varint("stats evicted_total");
      stats.shards = r.varint("stats shards");
      stats.window_epochs = r.varint("stats window_epochs");
      stats.subscriptions = r.varint("stats subscriptions");
      stats.snapshot_sweeps = r.varint("stats snapshot_sweeps");
      stats.snapshot_cache_hits = r.varint("stats snapshot_cache_hits");
      stats.index_deltas_applied = r.varint("stats index_deltas_applied");
      stats.index_compactions = r.varint("stats index_compactions");
      stats.index_rebuilds = r.varint("stats index_rebuilds");
      stats.locked_ns_last = r.varint("stats locked_ns_last");
      stats.locked_ns_total = r.varint("stats locked_ns_total");
      response.stats = stats;
      break;
    }
    case QueryKind::kMetrics:
      response.metrics = get_metrics_payload(r);
      break;
    case QueryKind::kHistory: {
      const auto count = r.varint("history point count");
      std::vector<HistoryPoint> points;
      points.reserve(count < (1u << 20) ? count : (1u << 20));
      std::uint64_t prev = 0;
      bool first = true;
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto delta = r.varint("history epoch delta");
        if (!first && delta == 0) {
          throw WireFormatError("duplicate epoch in history sequence");
        }
        HistoryPoint point;
        point.epoch = first ? delta : prev + delta;
        point.usage = get_class(r);
        prev = point.epoch;
        first = false;
        points.push_back(point);
      }
      response.history = std::move(points);
      break;
    }
  }
  return response;
}

}  // namespace

std::vector<std::uint8_t> encode_query_response(const QueryResponse& response) {
  std::vector<std::uint8_t> payload;
  put_query_response_payload(payload, response);
  return seal_frame(FrameType::kQueryResponse, std::move(payload));
}

QueryResponse decode_query_response(std::span<const std::uint8_t> frame) {
  const auto parsed =
      expect_single_frame(frame, FrameType::kQueryResponse, "query response");
  Reader r{parsed.payload};
  auto response = get_query_response_payload(r);
  expect_exhausted(r, "query response");
  return response;
}

// ------------------------------------------------- network protocol frames --

std::vector<std::uint8_t> encode_hello(const HelloFrame& hello) {
  std::vector<std::uint8_t> payload;
  payload.push_back(hello.protocol);
  put_string(payload, hello.token);
  return seal_frame(FrameType::kHello, std::move(payload));
}

HelloFrame decode_hello(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kHello, "hello");
  Reader r{parsed.payload};
  HelloFrame hello;
  hello.protocol = r.u8("hello protocol");
  hello.token = get_string(r, "hello token");
  expect_exhausted(r, "hello");
  return hello;
}

std::vector<std::uint8_t> encode_welcome(const WelcomeFrame& welcome) {
  std::vector<std::uint8_t> payload;
  payload.push_back(welcome.protocol);
  put_varint(payload, welcome.epoch);
  return seal_frame(FrameType::kWelcome, std::move(payload));
}

WelcomeFrame decode_welcome(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kWelcome, "welcome");
  Reader r{parsed.payload};
  WelcomeFrame welcome;
  welcome.protocol = r.u8("welcome protocol");
  welcome.epoch = r.varint("welcome epoch");
  expect_exhausted(r, "welcome");
  return welcome;
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& error) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, error.request_id);
  payload.push_back(static_cast<std::uint8_t>(error.code));
  put_string(payload, error.message);
  return seal_frame(FrameType::kError, std::move(payload));
}

ErrorFrame decode_error(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kError, "error");
  Reader r{parsed.payload};
  ErrorFrame error;
  error.request_id = r.varint("error request id");
  const auto code = r.u8("error code");
  if (code < 1 || code > 5) {
    throw WireFormatError("unknown error code " + std::to_string(code));
  }
  error.code = static_cast<ErrorCode>(code);
  error.message = get_string(r, "error message");
  expect_exhausted(r, "error");
  return error;
}

std::vector<std::uint8_t> encode_subscribe(const SubscribeFrame& subscribe) {
  if (subscribe.filter.watch.size() > kMaxSubscriptionWatch) {
    throw WireFormatError("subscription watchlist exceeds " +
                          std::to_string(kMaxSubscriptionWatch) + " ASNs");
  }
  std::vector<std::uint8_t> payload;
  put_varint(payload, subscribe.request_id);
  put_varint(payload, subscribe.filter.watch.size());
  for (const auto asn : subscribe.filter.watch) put_varint(payload, asn);
  put_code_spec(payload, subscribe.filter.from);
  put_code_spec(payload, subscribe.filter.to);
  payload.push_back(subscribe.replay_from.has_value() ? 1 : 0);
  if (subscribe.replay_from) put_varint(payload, *subscribe.replay_from);
  return seal_frame(FrameType::kSubscribe, std::move(payload));
}

SubscribeFrame decode_subscribe(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kSubscribe, "subscribe");
  Reader r{parsed.payload};
  SubscribeFrame subscribe;
  subscribe.request_id = r.varint("subscribe request id");
  const auto watch_count = r.varint("watchlist length");
  if (watch_count > kMaxSubscriptionWatch) {
    throw WireFormatError("subscription watchlist claims " + std::to_string(watch_count) +
                          " ASNs, cap is " + std::to_string(kMaxSubscriptionWatch));
  }
  subscribe.filter.watch.reserve(watch_count);
  for (std::uint64_t i = 0; i < watch_count; ++i) {
    const auto asn = r.varint("watchlist asn");
    if (asn > 0xFFFFFFFFull) {
      throw WireFormatError("watchlist ASN out of 32-bit range");
    }
    subscribe.filter.watch.push_back(static_cast<bgp::Asn>(asn));
  }
  subscribe.filter.from = get_code_spec(r, "subscribe from-code");
  subscribe.filter.to = get_code_spec(r, "subscribe to-code");
  const auto has_replay = r.u8("subscribe replay flag");
  if (has_replay > 1) throw WireFormatError("invalid subscribe replay flag");
  if (has_replay) subscribe.replay_from = r.varint("subscribe replay epoch");
  expect_exhausted(r, "subscribe");
  return subscribe;
}

std::vector<std::uint8_t> encode_subscribed(const SubscribedFrame& ack, FrameType type) {
  if (type != FrameType::kSubscribed && type != FrameType::kUnsubscribed) {
    throw WireFormatError("subscription ack frames must be kSubscribed or kUnsubscribed");
  }
  std::vector<std::uint8_t> payload;
  put_varint(payload, ack.request_id);
  put_varint(payload, ack.subscription_id);
  // The replay-coverage byte is only ever encoded toward peers that
  // negotiated kFeatureResume; legacy decoders reject trailing bytes.
  if (ack.replay_complete) payload.push_back(*ack.replay_complete ? 1 : 0);
  return seal_frame(type, std::move(payload));
}

SubscribedFrame decode_subscribed(std::span<const std::uint8_t> frame, FrameType type) {
  const auto what =
      type == FrameType::kUnsubscribed ? "unsubscribed ack" : "subscribed ack";
  const auto parsed = expect_single_frame(frame, type, what);
  Reader r{parsed.payload};
  SubscribedFrame ack;
  ack.request_id = r.varint("ack request id");
  ack.subscription_id = r.varint("ack subscription id");
  if (r.remaining() > 0) {
    const auto flag = r.u8("ack replay-complete flag");
    if (flag > 1) throw WireFormatError("invalid ack replay-complete flag");
    ack.replay_complete = flag == 1;
  }
  expect_exhausted(r, what);
  return ack;
}

std::vector<std::uint8_t> encode_unsubscribe(const UnsubscribeFrame& unsubscribe) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, unsubscribe.request_id);
  put_varint(payload, unsubscribe.subscription_id);
  return seal_frame(FrameType::kUnsubscribe, std::move(payload));
}

UnsubscribeFrame decode_unsubscribe(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kUnsubscribe, "unsubscribe");
  Reader r{parsed.payload};
  UnsubscribeFrame unsubscribe;
  unsubscribe.request_id = r.varint("unsubscribe request id");
  unsubscribe.subscription_id = r.varint("unsubscribe subscription id");
  expect_exhausted(r, "unsubscribe");
  return unsubscribe;
}

std::vector<std::uint8_t> encode_event(const EventFrame& event) {
  std::vector<std::uint8_t> payload;
  payload.reserve(event.delta.changes.size() * 4 + 24);
  put_varint(payload, event.subscription_id);
  put_delta_payload(payload, event.delta);
  return seal_frame(FrameType::kEvent, std::move(payload));
}

std::vector<std::uint8_t> encode_event_payload(const EpochDelta& delta) {
  std::vector<std::uint8_t> payload;
  payload.reserve(delta.changes.size() * 4 + 16);
  put_delta_payload(payload, delta);
  return payload;
}

std::vector<std::uint8_t> encode_event_prefix(std::uint64_t subscription_id,
                                              std::size_t payload_size) {
  // Header + varint(total payload length) + varint(subscription id): the
  // frame's length field covers the id varint plus the shared delta bytes.
  std::vector<std::uint8_t> id_bytes;
  put_varint(id_bytes, subscription_id);
  std::vector<std::uint8_t> prefix;
  prefix.reserve(id_bytes.size() + 16);
  put_frame_header(prefix, FrameType::kEvent);
  put_varint(prefix, id_bytes.size() + payload_size);
  prefix.insert(prefix.end(), id_bytes.begin(), id_bytes.end());
  return prefix;
}

EventFrame decode_event(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kEvent, "event");
  Reader r{parsed.payload};
  EventFrame event;
  event.subscription_id = r.varint("event subscription id");
  event.delta = get_delta_payload(r);
  expect_exhausted(r, "event");
  return event;
}

std::vector<std::uint8_t> encode_request(const RequestFrame& request) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, request.request_id);
  payload.push_back(static_cast<std::uint8_t>(request.request.kind));
  if (request.request.kind == QueryKind::kClassOf ||
      request.request.kind == QueryKind::kLiveCounters ||
      request.request.kind == QueryKind::kHistory) {
    put_varint(payload, request.request.asn);
  }
  return seal_frame(FrameType::kRequest, std::move(payload));
}

RequestFrame decode_request(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kRequest, "request");
  Reader r{parsed.payload};
  RequestFrame request;
  request.request_id = r.varint("request id");
  request.request.kind = get_query_kind(r);
  if (request.request.kind == QueryKind::kClassOf ||
      request.request.kind == QueryKind::kLiveCounters ||
      request.request.kind == QueryKind::kHistory) {
    const auto asn = r.varint("request asn");
    if (asn > 0xFFFFFFFFull) {
      throw WireFormatError("request ASN out of 32-bit range");
    }
    request.request.asn = static_cast<bgp::Asn>(asn);
  }
  expect_exhausted(r, "request");
  return request;
}

std::vector<std::uint8_t> encode_response(const ResponseFrame& response) {
  // The response body is the kQueryResponse payload layout, prefixed with
  // the request id it answers.
  std::vector<std::uint8_t> payload;
  put_varint(payload, response.request_id);
  put_query_response_payload(payload, response.response);
  return seal_frame(FrameType::kResponse, std::move(payload));
}

ResponseFrame decode_response(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kResponse, "response");
  Reader r{parsed.payload};
  ResponseFrame response;
  response.request_id = r.varint("response request id");
  response.response = get_query_response_payload(r);
  expect_exhausted(r, "response");
  return response;
}

// ------------------------------------- negotiated reliability frames (15-19) --

std::vector<std::uint8_t> encode_hello2(const Hello2Frame& hello) {
  std::vector<std::uint8_t> payload;
  payload.push_back(hello.protocol);
  put_string(payload, hello.token);
  put_varint(payload, hello.features);
  return seal_frame(FrameType::kHello2, std::move(payload));
}

Hello2Frame decode_hello2(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kHello2, "hello2");
  Reader r{parsed.payload};
  Hello2Frame hello;
  hello.protocol = r.u8("hello2 protocol");
  hello.token = get_string(r, "hello2 token");
  hello.features = r.varint("hello2 features");
  expect_exhausted(r, "hello2");
  return hello;
}

std::vector<std::uint8_t> encode_welcome2(const Welcome2Frame& welcome) {
  std::vector<std::uint8_t> payload;
  payload.push_back(welcome.protocol);
  put_varint(payload, welcome.epoch);
  put_varint(payload, welcome.features);
  payload.push_back(welcome.replay_horizon.has_value() ? 1 : 0);
  if (welcome.replay_horizon) put_varint(payload, *welcome.replay_horizon);
  return seal_frame(FrameType::kWelcome2, std::move(payload));
}

Welcome2Frame decode_welcome2(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kWelcome2, "welcome2");
  Reader r{parsed.payload};
  Welcome2Frame welcome;
  welcome.protocol = r.u8("welcome2 protocol");
  welcome.epoch = r.varint("welcome2 epoch");
  welcome.features = r.varint("welcome2 features");
  const auto has_horizon = r.u8("welcome2 horizon flag");
  if (has_horizon > 1) throw WireFormatError("invalid welcome2 horizon flag");
  if (has_horizon) welcome.replay_horizon = r.varint("welcome2 replay horizon");
  expect_exhausted(r, "welcome2");
  return welcome;
}

std::vector<std::uint8_t> encode_ping(const PingFrame& ping, FrameType type) {
  if (type != FrameType::kPing && type != FrameType::kPong) {
    throw WireFormatError("keepalive frames must be kPing or kPong");
  }
  std::vector<std::uint8_t> payload;
  put_varint(payload, ping.nonce);
  return seal_frame(type, std::move(payload));
}

PingFrame decode_ping(std::span<const std::uint8_t> frame, FrameType type) {
  const auto what = type == FrameType::kPong ? "pong" : "ping";
  const auto parsed = expect_single_frame(frame, type, what);
  Reader r{parsed.payload};
  PingFrame ping;
  ping.nonce = r.varint("keepalive nonce");
  expect_exhausted(r, what);
  return ping;
}

std::vector<std::uint8_t> encode_busy(const BusyFrame& busy) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, busy.request_id);
  put_varint(payload, busy.retry_after_ms);
  put_string(payload, busy.message);
  return seal_frame(FrameType::kBusy, std::move(payload));
}

BusyFrame decode_busy(std::span<const std::uint8_t> frame) {
  const auto parsed = expect_single_frame(frame, FrameType::kBusy, "busy");
  Reader r{parsed.payload};
  BusyFrame busy;
  busy.request_id = r.varint("busy request id");
  busy.retry_after_ms = r.varint("busy retry-after");
  busy.message = get_string(r, "busy message");
  expect_exhausted(r, "busy");
  return busy;
}

bool looks_like_wire(std::span<const std::uint8_t> data) noexcept {
  return data.size() >= kWireMagic.size() &&
         std::equal(kWireMagic.begin(), kWireMagic.end(), data.begin());
}

std::optional<Format> parse_format(std::string_view name) noexcept {
  if (name == "text") return Format::kText;
  if (name == "wire") return Format::kWire;
  return std::nullopt;
}

// ------------------------------------------------------------ file codecs --

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("cannot read file: " + path);
  return bytes;
}

namespace {

class TextCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "text"; }
  [[nodiscard]] std::string extension() const override { return ".db"; }

  void write_snapshot_file(const std::string& path,
                           const core::InferenceResult& result) const override {
    core::write_database_file(path, result);
  }

  [[nodiscard]] core::InferenceResult read_snapshot_file(
      const std::string& path) const override {
    return core::read_database_file(path);
  }
};

class WireCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "wire"; }
  [[nodiscard]] std::string extension() const override { return ".wire"; }

  void write_snapshot_file(const std::string& path,
                           const core::InferenceResult& result) const override {
    const auto frame = encode_snapshot(result);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open wire file for writing: " + path);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    if (!out) throw std::runtime_error("short write to wire file: " + path);
  }

  [[nodiscard]] core::InferenceResult read_snapshot_file(
      const std::string& path) const override {
    return decode_snapshot(read_file_bytes(path));
  }
};

}  // namespace

std::unique_ptr<Codec> make_codec(Format format) {
  if (format == Format::kWire) return std::make_unique<WireCodec>();
  return std::make_unique<TextCodec>();
}

std::optional<Format> sniff_format(const std::string& path) {
  // Only the leading bytes are needed — never load a multi-GB artifact just
  // to identify it.
  constexpr std::string_view kTextMagic = "# bgpcu-inference-db v1";
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::array<std::uint8_t, kTextMagic.size()> head{};
  in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (looks_like_wire(std::span(head.data(), got))) return Format::kWire;
  if (got >= kTextMagic.size() &&
      std::equal(kTextMagic.begin(), kTextMagic.end(), head.begin())) {
    return Format::kText;
  }
  return std::nullopt;
}

core::InferenceResult read_snapshot_any(const std::string& path) {
  const auto format = sniff_format(path);
  if (!format) {
    throw std::runtime_error("unrecognized snapshot format (neither wire nor text db): " +
                             path);
  }
  return make_codec(*format)->read_snapshot_file(path);
}

}  // namespace bgpcu::api
