#include "api/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/wire.h"
#include "obs/wellknown.h"

namespace bgpcu::api {

namespace {

/// A class-code side of a transition spec: "*" or a valid two-char code.
bool valid_code_spec(const std::string& spec) {
  return spec == "*" || SubscriptionFilter::valid_code(spec);
}

}  // namespace

bool SubscriptionFilter::valid_code(std::string_view code) noexcept {
  if (code.size() != 2) return false;
  const auto tag_ok = code[0] == 't' || code[0] == 's' || code[0] == 'u' || code[0] == 'n';
  const auto fwd_ok = code[1] == 'f' || code[1] == 'c' || code[1] == 'u' || code[1] == 'n';
  return tag_ok && fwd_ok;
}

SubscriptionFilter SubscriptionFilter::transition(const std::string& spec) {
  const auto arrow = spec.find("->");
  if (arrow == std::string::npos) {
    throw std::invalid_argument("transition spec needs FROM->TO, got '" + spec + "'");
  }
  SubscriptionFilter filter;
  filter.from = spec.substr(0, arrow);
  filter.to = spec.substr(arrow + 2);
  if (!valid_code_spec(filter.from) || !valid_code_spec(filter.to)) {
    throw std::invalid_argument("transition sides must be class codes or '*', got '" + spec +
                                "'");
  }
  return filter;
}

bool SubscriptionFilter::matches(const stream::ClassChange& change) const {
  if (!watch.empty() &&
      std::find(watch.begin(), watch.end(), change.asn) == watch.end()) {
    return false;
  }
  if (from != "*" && change.before.code() != from) return false;
  if (to != "*" && change.after.code() != to) return false;
  return true;
}

std::vector<stream::ClassChange> SubscriptionFilter::apply(const EpochDelta& delta) const {
  std::vector<stream::ClassChange> out;
  for (const auto& change : delta.changes) {
    if (matches(change)) out.push_back(change);
  }
  return out;
}

EventLog::EventLog(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

void EventLog::push(EpochDelta delta) {
  if (entries_.size() == capacity_) entries_.pop_front();
  entries_.push_back(std::move(delta));
}

std::vector<EpochDelta> EventLog::since(stream::Epoch from) const {
  std::vector<EpochDelta> out;
  for (const auto& entry : entries_) {
    if (entry.epoch >= from) out.push_back(entry);
  }
  return out;
}

std::optional<stream::Epoch> EventLog::oldest_epoch() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.front().epoch;
}

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      engine_(config_.stream),
      published_(std::make_shared<const core::InferenceResult>(
          core::CounterMap{}, config_.stream.engine.thresholds, 0)),
      log_(config_.event_log_capacity) {
  // The engine's constructor already forced the obs catalog, so no facade-
  // locked path ever interns (see the matching note in StreamEngine).
  auto& registry = obs::Registry::global();
  subs_collector_ = registry.add_collector(
      "bgpcu_api_subscriptions", "Registered subscription callbacks", {}, [this] {
        const std::lock_guard lock(facade_mutex_);
        return static_cast<double>(subscriptions_.size());
      });
  log_collector_ = registry.add_collector(
      "bgpcu_api_event_log_entries", "Epoch batches retained for replay", {}, [this] {
        const std::lock_guard lock(facade_mutex_);
        return static_cast<double>(log_.size());
      });
}

stream::IngestStats Service::ingest(core::Dataset batch) {
  return engine_.ingest(std::move(batch));
}

stream::Epoch Service::advance_epoch() { return engine_.advance_epoch(); }

stream::Epoch Service::epoch() const { return engine_.epoch(); }

QueryResponse Service::query(const QueryRequest& request) const {
  auto& m = obs::metrics();
  QueryResponse response;
  response.kind = request.kind;
  switch (request.kind) {
    case QueryKind::kClassOf: {
      m.api_query_class_of.add(1);
      const auto snapshot = engine_.snapshot();
      response.asn_class = AsnClass{request.asn, snapshot->usage(request.asn),
                                    snapshot->counters(request.asn)};
      break;
    }
    case QueryKind::kSnapshot:
      m.api_query_snapshot.add(1);
      response.snapshot = engine_.snapshot();
      break;
    case QueryKind::kLiveCounters: {
      m.api_query_live_counters.add(1);
      const auto counters = engine_.live_counters(request.asn);
      const auto usage =
          core::classify(counters, config_.stream.engine.thresholds);
      response.asn_class = AsnClass{request.asn, usage, counters};
      break;
    }
    case QueryKind::kStats: {
      m.api_query_stats.add(1);
      ServiceStats stats;
      stats.epoch = engine_.epoch();
      stats.live_tuples = engine_.live_tuples();
      stats.evicted_total = engine_.evicted_total();
      stats.shards = engine_.config().shards;
      stats.window_epochs = engine_.config().window_epochs;
      stats.subscriptions = subscription_count();
      const auto snap = engine_.snapshot_stats();
      stats.snapshot_sweeps = snap.sweeps;
      stats.snapshot_cache_hits = snap.cache_hits;
      stats.index_deltas_applied = snap.deltas_applied;
      stats.index_compactions = snap.group_compactions;
      stats.index_rebuilds = snap.index_rebuilds;
      stats.locked_ns_last = snap.locked_ns_last;
      stats.locked_ns_total = snap.locked_ns_total;
      response.stats = stats;
      break;
    }
    case QueryKind::kMetrics:
      // Counted before the scrape so the response's own series includes this
      // query — a scrape that doesn't count itself under-reports by one
      // forever.
      m.api_query_metrics.add(1);
      response.metrics = obs::Registry::global().collect();
      break;
    case QueryKind::kHistory: {
      m.api_query_history.add(1);
      // The provider is copied out so its (possibly slow) disk reads run
      // without holding the facade mutex.
      HistoryProvider provider;
      {
        const std::lock_guard lock(facade_mutex_);
        provider = history_provider_;
      }
      std::vector<HistoryPoint> points;
      if (provider) {
        // Sanitize whatever the provider returned into the response
        // invariant: strictly ascending epochs, class changes only.
        for (auto& point : provider(request.asn)) {
          if (!points.empty() && (point.epoch <= points.back().epoch ||
                                  point.usage == points.back().usage)) {
            continue;
          }
          points.push_back(point);
        }
      }
      // Always end the series at "now": the live class closes the evolution
      // whether or not any retained checkpoint covers this AS.
      const auto snapshot = engine_.snapshot();
      const auto usage = snapshot->usage(request.asn);
      const auto now = engine_.epoch();
      if (points.empty()) {
        points.push_back({now, usage});
      } else if (!(points.back().usage == usage)) {
        if (points.back().epoch >= now) {
          points.back().usage = usage;  // same epoch, newer truth
        } else {
          points.push_back({now, usage});
        }
      }
      response.history = std::move(points);
      break;
    }
  }
  return response;
}

std::vector<stream::ClassChange> Service::apply_subscription(const Subscription& subscription,
                                                             const EpochDelta& delta) {
  const auto& filter = subscription.filter;
  std::vector<stream::ClassChange> out;
  for (const auto& change : delta.changes) {
    if (!subscription.sorted_watch.empty() &&
        !std::binary_search(subscription.sorted_watch.begin(),
                            subscription.sorted_watch.end(), change.asn)) {
      continue;
    }
    if (filter.from != "*" && change.before.code() != filter.from) continue;
    if (filter.to != "*" && change.after.code() != filter.to) continue;
    out.push_back(change);
  }
  return out;
}

EpochDelta Service::publish() {
  // Deliveries to make once the facade mutex is released — callbacks may
  // re-enter subscribe/unsubscribe. A plain subscription carries its decoded
  // delta; an encoded one carries the shared serialized payload.
  struct Delivery {
    SubscriptionCallback callback;
    EncodedEventSink sink;
    EpochDelta decoded;
    EncodedEventPtr encoded;
  };
  std::vector<Delivery> dispatch;
  EpochDelta delta;
  {
    const std::lock_guard lock(facade_mutex_);
    auto current = engine_.snapshot();
    delta.epoch = engine_.epoch();
    delta.changes = stream::diff_classifications(*published_, *current);
    published_ = std::move(current);
    if (!delta.changes.empty()) {
      log_.push(delta);
      // Serialize-once cache for encoded subscriptions: subscriptions with
      // equal filters see identical filtered batches, so they share one
      // encoded buffer. Keyed by filter equality; linear scan is fine — the
      // massive-fan-out case is many subscribers over few distinct filters.
      std::vector<std::pair<const SubscriptionFilter*, EncodedEventPtr>> encoded_cache;
      auto& m = obs::metrics();
      for (const auto& sub : subscriptions_) {
        if (sub.encoded_sink) {
          EncodedEventPtr buffer;
          bool cached = false;
          for (const auto& [filter, entry] : encoded_cache) {
            if (*filter == sub.filter) {
              buffer = entry;
              cached = true;
              break;
            }
          }
          if (!cached) {
            auto filtered = apply_subscription(sub, delta);
            if (!filtered.empty()) {
              buffer = std::make_shared<const std::vector<std::uint8_t>>(
                  encode_event_payload(EpochDelta{delta.epoch, std::move(filtered)}));
              m.net_fanout_encodes.add(1);
            }
            // Non-matching filters are cached too (as null), so a thousand
            // subscribers on a filter nothing passes cost one evaluation.
            encoded_cache.emplace_back(&sub.filter, buffer);
          } else if (buffer) {
            m.net_fanout_buffer_reuses.add(1);
          }
          if (!buffer) continue;  // this filter passes nothing this epoch
          dispatch.push_back({nullptr, sub.encoded_sink, {}, buffer});
        } else {
          auto filtered = apply_subscription(sub, delta);
          if (filtered.empty()) continue;
          dispatch.push_back(
              {sub.callback, nullptr, EpochDelta{delta.epoch, std::move(filtered)}, nullptr});
        }
      }
    }
  }
  auto& m = obs::metrics();
  m.api_publishes.add(1);
  if (!delta.changes.empty()) m.api_changes_published.add(delta.changes.size());
  if (!dispatch.empty()) m.api_events_dispatched.add(dispatch.size());
  for (auto& d : dispatch) {
    if (d.sink) {
      d.sink(delta.epoch, d.encoded);
    } else {
      d.callback(d.decoded);
    }
  }
  return delta;
}

SubscriptionId Service::subscribe(SubscriptionFilter filter, SubscriptionCallback callback,
                                  std::optional<stream::Epoch> replay_from,
                                  bool* replay_complete) {
  return subscribe_impl(std::move(filter), std::move(callback), nullptr, replay_from,
                        replay_complete);
}

SubscriptionId Service::subscribe_encoded(SubscriptionFilter filter, EncodedEventSink sink,
                                          std::optional<stream::Epoch> replay_from,
                                          bool* replay_complete) {
  return subscribe_impl(std::move(filter), nullptr, std::move(sink), replay_from,
                        replay_complete);
}

SubscriptionId Service::subscribe_impl(SubscriptionFilter filter, SubscriptionCallback callback,
                                       EncodedEventSink sink,
                                       std::optional<stream::Epoch> replay_from,
                                       bool* replay_complete) {
  const std::lock_guard lock(facade_mutex_);
  if (replay_complete) {
    // Coverage is decided under the same mutex that delivers the replay: the
    // log's oldest retained epoch must not exceed the requested start (an
    // empty log means nothing was ever published, which is full coverage).
    const auto oldest = log_.oldest_epoch();
    *replay_complete = !replay_from || !oldest || *oldest <= *replay_from;
  }
  const SubscriptionId id = next_id_++;
  Subscription subscription{id, std::move(filter), {}, std::move(callback), std::move(sink)};
  subscription.sorted_watch = subscription.filter.watch;
  std::sort(subscription.sorted_watch.begin(), subscription.sorted_watch.end());
  subscription.sorted_watch.erase(
      std::unique(subscription.sorted_watch.begin(), subscription.sorted_watch.end()),
      subscription.sorted_watch.end());
  // Replay is delivered while still holding the facade mutex, *before* the
  // subscription becomes visible to publishers: a concurrent publish either
  // ran earlier (its batch is in the log and replays here) or blocks on the
  // mutex and delivers after — historical epochs can never arrive after a
  // newer live one. The price: a replay delivery must not call back into
  // the Service (live deliveries from publish() remain re-entrant-safe).
  if (replay_from) {
    obs::metrics().api_replays.add(1);
    for (const auto& entry : log_.since(*replay_from)) {
      auto filtered = apply_subscription(subscription, entry);
      if (filtered.empty()) continue;
      if (subscription.encoded_sink) {
        // Replay buffers are per-subscriber (no concurrent twin to share
        // with), but the sink contract — shared immutable payload bytes —
        // is identical to the live path.
        obs::metrics().net_fanout_encodes.add(1);
        subscription.encoded_sink(
            entry.epoch, std::make_shared<const std::vector<std::uint8_t>>(encode_event_payload(
                             EpochDelta{entry.epoch, std::move(filtered)})));
      } else {
        subscription.callback(EpochDelta{entry.epoch, std::move(filtered)});
      }
    }
  }
  subscriptions_.push_back(std::move(subscription));
  return id;
}

bool Service::unsubscribe(SubscriptionId id) {
  const std::lock_guard lock(facade_mutex_);
  const auto it = std::find_if(subscriptions_.begin(), subscriptions_.end(),
                               [id](const Subscription& s) { return s.id == id; });
  if (it == subscriptions_.end()) return false;
  subscriptions_.erase(it);
  return true;
}

std::size_t Service::subscription_count() const {
  const std::lock_guard lock(facade_mutex_);
  return subscriptions_.size();
}

std::vector<EpochDelta> Service::replay(stream::Epoch from) const {
  obs::metrics().api_replays.add(1);
  const std::lock_guard lock(facade_mutex_);
  return log_.since(from);
}

std::optional<stream::Epoch> Service::replay_horizon() const {
  const std::lock_guard lock(facade_mutex_);
  return log_.oldest_epoch();
}

void Service::set_history_provider(HistoryProvider provider) {
  const std::lock_guard lock(facade_mutex_);
  history_provider_ = std::move(provider);
}

void Service::restore_engine(stream::EngineState state,
                             std::span<const std::uint8_t> index_image) {
  engine_.restore_state(std::move(state), index_image);
}

void Service::preload_events(std::vector<EpochDelta> deltas) {
  const std::lock_guard lock(facade_mutex_);
  for (auto& delta : deltas) {
    if (!delta.changes.empty()) log_.push(std::move(delta));
  }
}

void Service::rebaseline() {
  // Snapshot first: taking the engine's exclusive lock while holding the
  // facade mutex matches publish()'s lock order.
  const std::lock_guard lock(facade_mutex_);
  published_ = engine_.snapshot();
}

}  // namespace bgpcu::api
