// Versioned binary wire format for the service artifacts: inference
// snapshots, epoch delta batches, and query request/response framing. The
// format is compact (varint-packed, delta-encoded ASNs), endian-stable
// (every multi-byte field has a defined byte order independent of the host),
// and versioned (a future-version frame is rejected loudly, never
// misparsed). Full layout spec: docs/WIRE_FORMAT.md.
//
// Every encoder returns a self-contained *frame* — magic, version, type,
// payload length, payload — so frames can be written to files, concatenated
// into logs, or sent over a socket unchanged. Every decoder is
// bounds-checked end to end: malformed input of any shape (truncation, bad
// magic, future version, trailing garbage, corrupt varints) throws
// WireFormatError and never crashes.
//
// The v1 text database (core/database.h) remains fully supported as a
// compatibility format behind the same Codec interface; `read_snapshot_any`
// sniffs the leading bytes and dispatches.
#ifndef BGPCU_API_WIRE_H
#define BGPCU_API_WIRE_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/service.h"
#include "core/engine.h"

namespace bgpcu::api {

/// Thrown on any structurally invalid wire input.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Frame magic: 0x89 "BCU" — the non-ASCII lead byte keeps text tools from
/// misidentifying wire files, PNG-style.
inline constexpr std::array<std::uint8_t, 4> kWireMagic = {0x89, 'B', 'C', 'U'};

/// Current (and only) format version. Decoders reject anything newer.
inline constexpr std::uint8_t kWireVersion = 1;

/// Record types carried in a frame header. Values are wire-stable.
enum class FrameType : std::uint8_t {
  kSnapshot = 1,       ///< Full InferenceResult.
  kDeltaBatch = 2,     ///< One EpochDelta (epoch + class changes).
  kQueryRequest = 3,   ///< api::QueryRequest.
  kQueryResponse = 4,  ///< api::QueryResponse.
};

/// One decoded frame boundary inside a buffer. `payload` borrows the input.
struct Frame {
  FrameType type = FrameType::kSnapshot;
  std::span<const std::uint8_t> payload;
  std::size_t size = 0;  ///< Whole frame including header, for advancing.
};

/// Splits a buffer of concatenated frames (e.g. a delta log file). `next()`
/// returns nullopt at clean end-of-buffer and throws WireFormatError on a
/// malformed or truncated frame.
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- Frame codecs. Each encode_* returns one full frame; each decode_*
// --- accepts exactly one full frame and throws WireFormatError otherwise.

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const core::InferenceResult& result);
[[nodiscard]] core::InferenceResult decode_snapshot(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_delta_batch(const EpochDelta& delta);
[[nodiscard]] EpochDelta decode_delta_batch(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_query_request(const QueryRequest& request);
[[nodiscard]] QueryRequest decode_query_request(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_query_response(const QueryResponse& response);
[[nodiscard]] QueryResponse decode_query_response(std::span<const std::uint8_t> frame);

/// True when `data` begins with the wire magic (any version).
[[nodiscard]] bool looks_like_wire(std::span<const std::uint8_t> data) noexcept;

/// Loads a file's raw bytes (shared by the wire codec and the inspection
/// tools). Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::string& path);

// --- File-level codec interface: the stable abstraction tools sit on, with
// --- the binary format and the v1 text database as interchangeable
// --- implementations.

enum class Format : std::uint8_t { kText, kWire };

/// Parses "text"/"wire"; nullopt on anything else.
[[nodiscard]] std::optional<Format> parse_format(std::string_view name) noexcept;

/// Serialization strategy for snapshot artifacts.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Extension for snapshot files, including the dot (".db" / ".wire").
  [[nodiscard]] virtual std::string extension() const = 0;

  virtual void write_snapshot_file(const std::string& path,
                                   const core::InferenceResult& result) const = 0;
  [[nodiscard]] virtual core::InferenceResult read_snapshot_file(
      const std::string& path) const = 0;
};

/// Codec for `format`; never null.
[[nodiscard]] std::unique_ptr<Codec> make_codec(Format format);

/// Reads a snapshot in either format, sniffing the leading bytes.
[[nodiscard]] core::InferenceResult read_snapshot_any(const std::string& path);

/// Sniffs a file's format from its leading bytes; nullopt when it is neither
/// a wire frame nor a v1 text database.
[[nodiscard]] std::optional<Format> sniff_format(const std::string& path);

}  // namespace bgpcu::api

#endif  // BGPCU_API_WIRE_H
