// Versioned binary wire format for the service artifacts: inference
// snapshots, epoch delta batches, and query request/response framing. The
// format is compact (varint-packed, delta-encoded ASNs), endian-stable
// (every multi-byte field has a defined byte order independent of the host),
// and versioned (a future-version frame is rejected loudly, never
// misparsed). Full layout spec: docs/WIRE_FORMAT.md.
//
// Every encoder returns a self-contained *frame* — magic, version, type,
// payload length, payload — so frames can be written to files, concatenated
// into logs, or sent over a socket unchanged. Every decoder is
// bounds-checked end to end: malformed input of any shape (truncation, bad
// magic, future version, trailing garbage, corrupt varints) throws
// WireFormatError and never crashes.
//
// The v1 text database (core/database.h) remains fully supported as a
// compatibility format behind the same Codec interface; `read_snapshot_any`
// sniffs the leading bytes and dispatches.
#ifndef BGPCU_API_WIRE_H
#define BGPCU_API_WIRE_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/service.h"
#include "core/engine.h"

namespace bgpcu::api {

/// Thrown on any structurally invalid wire input.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Frame magic: 0x89 "BCU" — the non-ASCII lead byte keeps text tools from
/// misidentifying wire files, PNG-style.
inline constexpr std::array<std::uint8_t, 4> kWireMagic = {0x89, 'B', 'C', 'U'};

/// Current (and only) format version. Decoders reject anything newer.
inline constexpr std::uint8_t kWireVersion = 1;

/// Current network *conversation* version, carried in hello/welcome and
/// matched exactly at the handshake. Distinct from kWireVersion: the
/// artifact frames (snapshot/delta files) are frozen per wire version
/// because files outlive processes, while live-connection frames may grow
/// fields between protocol versions — bumping this is what turns a
/// mixed-version client/server pair into a clean "unsupported protocol
/// version" handshake error instead of a mid-payload decode failure.
/// v2: the stats query response grew the snapshot-path fields.
inline constexpr std::uint8_t kProtocolVersion = 2;

/// Record types carried in a frame header. Values are wire-stable. Types
/// 1-4 are the v1 artifact frames (files, logs); 5-14 are the network
/// protocol frames spoken between bgpcu_serve and net::Client (see
/// docs/PROTOCOL.md).
enum class FrameType : std::uint8_t {
  kSnapshot = 1,       ///< Full InferenceResult.
  kDeltaBatch = 2,     ///< One EpochDelta (epoch + class changes).
  kQueryRequest = 3,   ///< api::QueryRequest.
  kQueryResponse = 4,  ///< api::QueryResponse.
  kHello = 5,          ///< Client handshake: protocol version + auth token.
  kWelcome = 6,        ///< Server handshake accept: version + current epoch.
  kError = 7,          ///< Request-level or connection-level failure.
  kSubscribe = 8,      ///< Open a filtered class-change subscription.
  kSubscribed = 9,     ///< Subscription acknowledgment with its id.
  kEvent = 10,         ///< One pushed EpochDelta on a subscription.
  kRequest = 11,       ///< Pipelinable query: request id + QueryRequest.
  kResponse = 12,      ///< Answer to kRequest, matched by request id.
  kUnsubscribe = 13,   ///< Close one subscription by id.
  kUnsubscribed = 14,  ///< Unsubscribe acknowledgment.
  kHello2 = 15,        ///< Feature-negotiating handshake: hello + feature bits.
  kWelcome2 = 16,      ///< Answer to kHello2: welcome + granted features + horizon.
  kPing = 17,          ///< Keepalive probe (either direction, negotiated).
  kPong = 18,          ///< Keepalive reply echoing the probe nonce.
  kBusy = 19,          ///< Structured overload shed with a retry-after hint.
};

/// Largest valid FrameType value; parse rejects anything above it.
inline constexpr std::uint8_t kMaxFrameType = 19;

/// Default cap on a single frame's payload. Generous enough for a full-table
/// snapshot; incremental parsers reject a length field claiming more, so a
/// corrupt (or hostile) length varint can never drive allocation.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

/// Cap on a subscription filter's ASN watchlist. Every publish evaluates
/// every subscriber's filter, so a remote peer must not be able to install
/// an arbitrarily large one.
inline constexpr std::size_t kMaxSubscriptionWatch = 65536;

/// One decoded frame boundary inside a buffer. `payload` borrows the input.
struct Frame {
  FrameType type = FrameType::kSnapshot;
  std::span<const std::uint8_t> payload;
  std::size_t size = 0;  ///< Whole frame including header, for advancing.
};

/// Splits a buffer of concatenated frames (e.g. a delta log file). `next()`
/// returns nullopt at clean end-of-buffer and throws WireFormatError on a
/// malformed or truncated frame.
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Incremental frame-boundary probe for byte-stream transports. Returns the
/// complete frame when `data` begins with one (payload borrows `data`);
/// nullopt when `data` is a valid but incomplete prefix (read more bytes);
/// throws WireFormatError as soon as the prefix can never become a valid
/// frame (bad magic, unsupported version, unknown type, overlong length
/// varint, or a payload length exceeding `max_payload`).
[[nodiscard]] std::optional<Frame> try_parse_frame(std::span<const std::uint8_t> data,
                                                   std::size_t max_payload = kMaxFramePayload);

/// Type of the complete frame at the start of `data`; throws on malformed
/// input. Dispatch helper for consumers of FrameBuffer-extracted frames.
[[nodiscard]] FrameType peek_frame_type(std::span<const std::uint8_t> data);

// --- Frame codecs. Each encode_* returns one full frame; each decode_*
// --- accepts exactly one full frame and throws WireFormatError otherwise.

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const core::InferenceResult& result);
[[nodiscard]] core::InferenceResult decode_snapshot(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_delta_batch(const EpochDelta& delta);
[[nodiscard]] EpochDelta decode_delta_batch(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_query_request(const QueryRequest& request);
[[nodiscard]] QueryRequest decode_query_request(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_query_response(const QueryResponse& response);
[[nodiscard]] QueryResponse decode_query_response(std::span<const std::uint8_t> frame);

// --- Network protocol frames (types 5-14). These are the unit of exchange
// --- between bgpcu_serve and net::Client; layout in docs/PROTOCOL.md.

/// Why the server failed a request (kError frames). Values are wire-stable.
enum class ErrorCode : std::uint8_t {
  kAuthFailed = 1,           ///< Missing or wrong auth token.
  kBadRequest = 2,           ///< Malformed or unexpected frame.
  kUnknownSubscription = 3,  ///< Unsubscribe for an id the connection never opened.
  kServerBusy = 4,           ///< Connection limit reached; try later.
  kInternal = 5,             ///< Server-side failure answering a valid request.
};

/// First frame on every connection, client -> server.
struct HelloFrame {
  std::uint8_t protocol = kProtocolVersion;
  std::string token;  ///< Empty when the server runs without auth.

  friend bool operator==(const HelloFrame&, const HelloFrame&) = default;
};

/// Handshake accept, server -> client.
struct WelcomeFrame {
  std::uint8_t protocol = kProtocolVersion;
  stream::Epoch epoch = 0;  ///< Service epoch at accept time.

  friend bool operator==(const WelcomeFrame&, const WelcomeFrame&) = default;
};

/// Failure report. `request_id` 0 means connection-level (the server closes
/// the connection after sending it); nonzero ties it to a kRequest /
/// kSubscribe / kUnsubscribe id.
struct ErrorFrame {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  friend bool operator==(const ErrorFrame&, const ErrorFrame&) = default;
};

/// Open a subscription: the service-side SubscriptionFilter plus an optional
/// replay-from epoch (see Service::subscribe).
struct SubscribeFrame {
  std::uint64_t request_id = 0;
  SubscriptionFilter filter;
  std::optional<stream::Epoch> replay_from;

  friend bool operator==(const SubscribeFrame&, const SubscribeFrame&) = default;
};

/// Acknowledges kSubscribe (`subscription_id` names the new subscription)
/// and kUnsubscribe (as kUnsubscribed, echoing the closed id).
///
/// `replay_complete` is engaged only on connections that negotiated
/// kFeatureResume: when the subscribe asked for a replay_from epoch, it says
/// whether the retained event log still covered that epoch (false = the
/// replay horizon has passed it and the replayed tail is lossy — the client
/// must re-sync from a snapshot). Computed atomically with the replay inside
/// the service, so it cannot race a concurrent publish eviction. Legacy
/// connections never see the extra byte, keeping the ack layout additive.
struct SubscribedFrame {
  std::uint64_t request_id = 0;
  std::uint64_t subscription_id = 0;
  std::optional<bool> replay_complete;

  friend bool operator==(const SubscribedFrame&, const SubscribedFrame&) = default;
};

/// Close one subscription.
struct UnsubscribeFrame {
  std::uint64_t request_id = 0;
  std::uint64_t subscription_id = 0;

  friend bool operator==(const UnsubscribeFrame&, const UnsubscribeFrame&) = default;
};

/// One pushed (filtered, non-empty) epoch batch on a subscription.
struct EventFrame {
  std::uint64_t subscription_id = 0;
  EpochDelta delta;

  friend bool operator==(const EventFrame&, const EventFrame&) = default;
};

/// A pipelinable query: the server answers each with a kResponse (or kError)
/// carrying the same request id, in arrival order.
struct RequestFrame {
  std::uint64_t request_id = 0;
  QueryRequest request;

  friend bool operator==(const RequestFrame&, const RequestFrame&) = default;
};

/// Answer to a RequestFrame.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  QueryResponse response;
};

// --- Negotiated reliability frames (types 15-19). A client opts in by
// --- opening with kHello2; the server only ever sends these types on
// --- connections that did, so a legacy peer never sees an unknown type.

/// Feature bits carried in kHello2 (requested) and kWelcome2 (granted).
/// The effective feature set of a connection is the intersection.
inline constexpr std::uint64_t kFeatureKeepalive = 1u << 0;  ///< kPing/kPong allowed.
inline constexpr std::uint64_t kFeatureBusyRetry = 1u << 1;  ///< Sheds arrive as kBusy.
inline constexpr std::uint64_t kFeatureResume = 1u << 2;     ///< Acks carry replay_complete.
inline constexpr std::uint64_t kAllFeatures =
    kFeatureKeepalive | kFeatureBusyRetry | kFeatureResume;

/// Feature-negotiating handshake, client -> server. Replaces kHello on
/// clients that want the reliability extensions; servers accept either as
/// the first frame.
struct Hello2Frame {
  std::uint8_t protocol = kProtocolVersion;
  std::string token;
  std::uint64_t features = 0;  ///< Requested kFeature* bits.

  friend bool operator==(const Hello2Frame&, const Hello2Frame&) = default;
};

/// Answer to kHello2, server -> client.
struct Welcome2Frame {
  std::uint8_t protocol = kProtocolVersion;
  stream::Epoch epoch = 0;     ///< Service epoch at accept time.
  std::uint64_t features = 0;  ///< Granted kFeature* bits (subset of requested).
  /// Oldest epoch the server's event log can still replay; nullopt when
  /// nothing has been published yet. Advisory — the authoritative per-replay
  /// coverage answer is the subscribe ack's replay_complete flag.
  std::optional<stream::Epoch> replay_horizon;

  friend bool operator==(const Welcome2Frame&, const Welcome2Frame&) = default;
};

/// Keepalive probe/reply. The same payload serves kPing and kPong (the reply
/// echoes the probe's nonce), mirroring the kSubscribed/kUnsubscribed
/// type-parameterized codec.
struct PingFrame {
  std::uint64_t nonce = 0;

  friend bool operator==(const PingFrame&, const PingFrame&) = default;
};

/// Structured overload shed, server -> client (kFeatureBusyRetry
/// connections). `request_id` 0 means connection-level (admission control —
/// the server closes after sending it); nonzero sheds one rate-limited
/// request while the connection stays usable.
struct BusyFrame {
  std::uint64_t request_id = 0;
  std::uint64_t retry_after_ms = 0;  ///< Hint: back off at least this long.
  std::string message;

  friend bool operator==(const BusyFrame&, const BusyFrame&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloFrame& hello);
[[nodiscard]] HelloFrame decode_hello(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_welcome(const WelcomeFrame& welcome);
[[nodiscard]] WelcomeFrame decode_welcome(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorFrame& error);
[[nodiscard]] ErrorFrame decode_error(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_subscribe(const SubscribeFrame& subscribe);
[[nodiscard]] SubscribeFrame decode_subscribe(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_subscribed(const SubscribedFrame& ack,
                                                          FrameType type = FrameType::kSubscribed);
[[nodiscard]] SubscribedFrame decode_subscribed(std::span<const std::uint8_t> frame,
                                                FrameType type = FrameType::kSubscribed);

[[nodiscard]] std::vector<std::uint8_t> encode_unsubscribe(const UnsubscribeFrame& unsubscribe);
[[nodiscard]] UnsubscribeFrame decode_unsubscribe(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_event(const EventFrame& event);
[[nodiscard]] EventFrame decode_event(std::span<const std::uint8_t> frame);

/// Split event encoding for serialize-once fan-out. An event frame is the
/// only frame the server sends to many peers at once, but its payload
/// starts with the per-subscription id — so the broadcast-shared part is
/// the delta payload and each subscriber gets a tiny owned prefix:
///
///   encode_event_prefix(id, payload.size()) ∥ encode_event_payload(delta)
///     == encode_event({id, delta})        (byte-for-byte)
///
/// The payload is encoded once per published epoch (per distinct filter)
/// and shared across every matching subscription's write queue.
[[nodiscard]] std::vector<std::uint8_t> encode_event_payload(const EpochDelta& delta);
[[nodiscard]] std::vector<std::uint8_t> encode_event_prefix(std::uint64_t subscription_id,
                                                            std::size_t payload_size);

[[nodiscard]] std::vector<std::uint8_t> encode_request(const RequestFrame& request);
[[nodiscard]] RequestFrame decode_request(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_response(const ResponseFrame& response);
[[nodiscard]] ResponseFrame decode_response(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_hello2(const Hello2Frame& hello);
[[nodiscard]] Hello2Frame decode_hello2(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_welcome2(const Welcome2Frame& welcome);
[[nodiscard]] Welcome2Frame decode_welcome2(std::span<const std::uint8_t> frame);

[[nodiscard]] std::vector<std::uint8_t> encode_ping(const PingFrame& ping,
                                                    FrameType type = FrameType::kPing);
[[nodiscard]] PingFrame decode_ping(std::span<const std::uint8_t> frame,
                                    FrameType type = FrameType::kPing);

[[nodiscard]] std::vector<std::uint8_t> encode_busy(const BusyFrame& busy);
[[nodiscard]] BusyFrame decode_busy(std::span<const std::uint8_t> frame);

/// True when `data` begins with the wire magic (any version).
[[nodiscard]] bool looks_like_wire(std::span<const std::uint8_t> data) noexcept;

/// Loads a file's raw bytes (shared by the wire codec and the inspection
/// tools). Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::string& path);

// --- File-level codec interface: the stable abstraction tools sit on, with
// --- the binary format and the v1 text database as interchangeable
// --- implementations.

enum class Format : std::uint8_t { kText, kWire };

/// Parses "text"/"wire"; nullopt on anything else.
[[nodiscard]] std::optional<Format> parse_format(std::string_view name) noexcept;

/// Serialization strategy for snapshot artifacts.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Extension for snapshot files, including the dot (".db" / ".wire").
  [[nodiscard]] virtual std::string extension() const = 0;

  virtual void write_snapshot_file(const std::string& path,
                                   const core::InferenceResult& result) const = 0;
  [[nodiscard]] virtual core::InferenceResult read_snapshot_file(
      const std::string& path) const = 0;
};

/// Codec for `format`; never null.
[[nodiscard]] std::unique_ptr<Codec> make_codec(Format format);

/// Reads a snapshot in either format, sniffing the leading bytes.
[[nodiscard]] core::InferenceResult read_snapshot_any(const std::string& path);

/// Sniffs a file's format from its leading bytes; nullopt when it is neither
/// a wire frame nor a v1 text database.
[[nodiscard]] std::optional<Format> sniff_format(const std::string& path);

}  // namespace bgpcu::api

#endif  // BGPCU_API_WIRE_H
