// The service facade: the library's public surface for programmatic
// consumers (anomaly detectors, TE tooling, network front ends). A Service
// owns a stream::StreamEngine and exposes everything a caller needs —
// ingest, epoch control, a typed query API, and a filtered subscription feed
// of class transitions — so callers never touch engine internals. The
// subscription feed delivers exactly the `stream::diff_classifications`
// sequence over successively published snapshots (the correctness contract,
// property-tested in tests/api/test_service_property.cc), batched per epoch
// and retained in a ring buffer so late subscribers can replay recent
// history.
#ifndef BGPCU_API_SERVICE_H
#define BGPCU_API_SERVICE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "stream/delta.h"
#include "stream/engine.h"

namespace bgpcu::api {

/// Service tuning: the wrapped engine's knobs plus facade-level retention.
struct ServiceConfig {
  stream::StreamConfig stream;  ///< Shards, window, thresholds.
  /// Published epoch batches the event log retains for replay. Clamped to
  /// >= 1; older batches fall off the ring.
  std::size_t event_log_capacity = 64;
};

/// What a QueryRequest asks for. Values are wire-stable (see api/wire.h).
enum class QueryKind : std::uint8_t {
  kClassOf = 1,       ///< Swept class + counters for one AS.
  kSnapshot = 2,      ///< Full InferenceResult over the live tuple set.
  kLiveCounters = 3,  ///< Real-time peer-column evidence for one AS (no sweep).
  kStats = 4,         ///< Engine/service health counters.
  kMetrics = 5,       ///< Full observability scrape (obs::Registry::collect).
  kHistory = 6,       ///< Class evolution of one AS across retained epochs.
};

/// A single typed request against the service.
struct QueryRequest {
  QueryKind kind = QueryKind::kStats;
  bgp::Asn asn = 0;  ///< Meaningful for kClassOf / kLiveCounters / kHistory.

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

/// One point in an AS's class evolution (QueryKind::kHistory): the class the
/// AS held as of `epoch`. A response's points are strictly ascending in
/// epoch and consecutive points always differ in class.
struct HistoryPoint {
  stream::Epoch epoch = 0;
  core::UsageClass usage;

  friend bool operator==(const HistoryPoint&, const HistoryPoint&) = default;
};

/// Per-AS answer: classification plus the evidence behind it.
struct AsnClass {
  bgp::Asn asn = 0;
  core::UsageClass usage;
  core::UsageCounters counters;

  friend bool operator==(const AsnClass&, const AsnClass&) = default;
};

/// Service health counters (QueryKind::kStats).
struct ServiceStats {
  stream::Epoch epoch = 0;
  std::uint64_t live_tuples = 0;
  std::uint64_t evicted_total = 0;
  std::uint64_t shards = 0;
  std::uint64_t window_epochs = 0;
  std::uint64_t subscriptions = 0;
  // Snapshot-path health (see stream::SnapshotStats): how often the engine
  // swept vs served the cache, how much incremental-index maintenance the
  // sweeps cost, and the exclusive-lock (locked-phase) time they held.
  std::uint64_t snapshot_sweeps = 0;
  std::uint64_t snapshot_cache_hits = 0;
  std::uint64_t index_deltas_applied = 0;
  std::uint64_t index_compactions = 0;
  std::uint64_t index_rebuilds = 0;
  std::uint64_t locked_ns_last = 0;
  std::uint64_t locked_ns_total = 0;

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

/// Union-style response; exactly the member matching `kind` is engaged.
struct QueryResponse {
  QueryKind kind = QueryKind::kStats;
  std::optional<AsnClass> asn_class;  ///< kClassOf, kLiveCounters.
  /// kSnapshot: a shared immutable handle onto the engine's cached result —
  /// bulk queries share one object instead of deep-copying the counter map.
  stream::SnapshotPtr snapshot;
  std::optional<ServiceStats> stats;      ///< kStats.
  std::optional<obs::Snapshot> metrics;   ///< kMetrics.
  std::optional<std::vector<HistoryPoint>> history;  ///< kHistory.
};

/// One published epoch's class transitions, in ascending-ASN order — the
/// unit of the subscription feed, the event log, and the binary delta file.
struct EpochDelta {
  stream::Epoch epoch = 0;
  std::vector<stream::ClassChange> changes;

  friend bool operator==(const EpochDelta&, const EpochDelta&) = default;
};

/// Which transitions a subscriber wants. Default-constructed matches
/// everything. `from`/`to` are two-character class codes ("tf", "nn", ...)
/// or "*" for any; `transition("tf->tc")`-style specs parse both at once.
struct SubscriptionFilter {
  std::vector<bgp::Asn> watch;  ///< Only these ASNs; empty = every AS.
  std::string from = "*";       ///< Class code before the change, or "*".
  std::string to = "*";         ///< Class code after the change, or "*".

  /// Parses "FROM->TO" (each side a class code or "*"), e.g. "*->tc".
  /// Throws std::invalid_argument on anything else.
  [[nodiscard]] static SubscriptionFilter transition(const std::string& spec);

  /// True for a well-formed two-character class code ("tf", "nn", ...).
  /// "*" is NOT a code — spec sides allow it, codes themselves don't.
  [[nodiscard]] static bool valid_code(std::string_view code) noexcept;

  [[nodiscard]] bool matches(const stream::ClassChange& change) const;

  /// The subset of `delta` this filter passes, preserving order.
  [[nodiscard]] std::vector<stream::ClassChange> apply(const EpochDelta& delta) const;

  friend bool operator==(const SubscriptionFilter&, const SubscriptionFilter&) = default;
};

/// Receives one filtered, non-empty EpochDelta per published epoch.
using SubscriptionCallback = std::function<void(const EpochDelta&)>;

/// A shared, immutable, already-encoded event payload (the
/// api::encode_event_payload bytes of a filtered EpochDelta). publish()
/// serializes each distinct filter's result once and hands every matching
/// subscriber the same buffer — the serialize-once broadcast path.
using EncodedEventPtr = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Encoded-subscription receiver: one (epoch, shared payload) per published
/// epoch that passes the filter. The receiver pairs the payload with its own
/// per-subscription frame prefix (api::encode_event_prefix) to form the wire
/// frame; the payload buffer must be treated as immutable.
using EncodedEventSink = std::function<void(stream::Epoch, const EncodedEventPtr&)>;

/// Supplies the retained-history part of a kHistory answer: class points for
/// `asn` at past epochs, strictly ascending, from whatever longitudinal
/// storage backs the service (store::Store in the serving daemon). The
/// service appends the live class itself, so a provider never has to know
/// the current epoch.
using HistoryProvider = std::function<std::vector<HistoryPoint>(bgp::Asn)>;

/// Handle for unsubscribe; never reused within one Service.
using SubscriptionId = std::uint64_t;

/// Fixed-capacity ring of recently published epoch deltas (oldest evicted
/// first). Not thread-safe on its own; the Service serializes access.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity);

  void push(EpochDelta delta);

  /// All retained batches with epoch >= `from`, oldest first.
  [[nodiscard]] std::vector<EpochDelta> since(stream::Epoch from) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Epoch of the oldest retained batch; nullopt when empty. Replay from an
  /// earlier epoch is lossy — callers can detect the gap with this.
  [[nodiscard]] std::optional<stream::Epoch> oldest_epoch() const;

 private:
  std::size_t capacity_;
  std::deque<EpochDelta> entries_;
};

/// The facade. Typical service loop:
///
///   api::Service service({.stream = {...}});
///   auto id = service.subscribe(api::SubscriptionFilter::transition("*->tc"),
///                               [](const api::EpochDelta& d) { ... });
///   for (;;) {
///     service.ingest(next_batch());
///     service.advance_epoch();
///     service.publish();            // diffs, logs, notifies subscribers
///   }
///
/// Thread model: `ingest`/`query(kClassOf is a sweep; kLiveCounters/kStats
/// are lock-light)` follow the engine's concurrency rules; `publish`,
/// `subscribe`, `unsubscribe`, and `replay` serialize on a facade mutex.
/// publish() invokes callbacks *outside* that mutex, so a callback may
/// safely subscribe/unsubscribe re-entrantly; replayed deliveries during
/// subscribe() run under the mutex (see subscribe()).
class Service {
 public:
  explicit Service(ServiceConfig config = {});

  /// Ingests one batch at the current epoch (see StreamEngine::ingest).
  stream::IngestStats ingest(core::Dataset batch);

  /// Advances the engine epoch, aging out-of-window tuples. Returns it.
  stream::Epoch advance_epoch();

  [[nodiscard]] stream::Epoch epoch() const;

  /// Answers one typed request. kSnapshot/kClassOf sweep (cached when the
  /// engine is unchanged); kLiveCounters/kStats never sweep.
  [[nodiscard]] QueryResponse query(const QueryRequest& request) const;

  /// Snapshots, diffs against the previously published snapshot, appends the
  /// batch to the event log, and dispatches it through every subscription
  /// filter. Returns the full (unfiltered) batch. Publishing twice without
  /// an intervening change yields an empty batch and logs nothing.
  EpochDelta publish();

  /// Registers `callback` for future publishes. When `replay_from` is set,
  /// retained batches with epoch >= *replay_from are delivered (filtered)
  /// before this call returns — and before any concurrent publish can
  /// deliver a newer epoch, so the subscriber always observes epochs in
  /// order. Replayed deliveries run under the facade mutex: the callback
  /// must not call back into the Service while handling one (callbacks
  /// invoked from publish() may).
  ///
  /// When `replay_complete` is non-null it is set (atomically with the
  /// replay, under the same mutex — a concurrent publish cannot evict
  /// between the check and the replay) to whether the retained log still
  /// covered `replay_from`: false means the replay horizon has passed it and
  /// the delivered tail is missing older epochs, so a resuming subscriber
  /// must re-sync from a snapshot. Always true without `replay_from`.
  SubscriptionId subscribe(SubscriptionFilter filter, SubscriptionCallback callback,
                           std::optional<stream::Epoch> replay_from = std::nullopt,
                           bool* replay_complete = nullptr);

  /// Like subscribe(), but the receiver gets pre-encoded shared payloads
  /// instead of decoded deltas: publish() serializes each distinct filter's
  /// result once per epoch and every matching encoded subscription receives
  /// the same refcounted buffer (see EncodedEventSink). Replay semantics,
  /// ordering, and the `replay_complete` contract match subscribe();
  /// replayed payloads are encoded per retained batch during this call.
  SubscriptionId subscribe_encoded(SubscriptionFilter filter, EncodedEventSink sink,
                                   std::optional<stream::Epoch> replay_from = std::nullopt,
                                   bool* replay_complete = nullptr);

  /// Returns false when `id` was never issued or already removed.
  bool unsubscribe(SubscriptionId id);

  [[nodiscard]] std::size_t subscription_count() const;

  /// Unfiltered retained history with epoch >= `from` (see EventLog::since).
  [[nodiscard]] std::vector<EpochDelta> replay(stream::Epoch from) const;

  /// Epoch of the oldest batch still replayable; nullopt before any publish.
  [[nodiscard]] std::optional<stream::Epoch> replay_horizon() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

  // --- durable-store integration (store::Store) -------------------------
  // The service stays storage-agnostic: the daemon wires a Store in through
  // these hooks, and recovery drives them in order (restore_engine, then
  // preload_events, then rebaseline) before any traffic is served.

  /// Installs (or clears, with an empty function) the retained-history
  /// source consulted by kHistory queries.
  void set_history_provider(HistoryProvider provider);

  /// Swaps in a recovered engine state + optional index image (see
  /// stream::StreamEngine::restore_state).
  void restore_engine(stream::EngineState state,
                      std::span<const std::uint8_t> index_image = {});

  /// Seeds the event-log ring with recovered epoch deltas (ascending), so
  /// subscribers can replay across the restart. No callbacks fire.
  void preload_events(std::vector<EpochDelta> deltas);

  /// Re-anchors the publish baseline at the engine's current snapshot
  /// without diffing or notifying: recovery replays already-published
  /// history, which must not be re-announced as fresh transitions.
  void rebaseline();

  /// Exports the engine's durable state (see StreamEngine::checkpoint_state).
  [[nodiscard]] stream::CheckpointState checkpoint_state() const {
    return engine_.checkpoint_state();
  }

  /// Test instrumentation, forwarded to the wrapped engine (see
  /// StreamEngine::set_after_collect_hook): runs after a snapshot's
  /// collection lock is released, before its sweep. Lets concurrency tests
  /// hold sweeps open deterministically. Set before going concurrent.
  void set_after_collect_hook(std::function<void()> hook) {
    engine_.set_after_collect_hook(std::move(hook));
  }

 private:
  struct Subscription {
    SubscriptionId id = 0;
    SubscriptionFilter filter;
    /// filter.watch sorted + deduped once at subscribe: publish() evaluates
    /// every subscriber's filter under the facade mutex, so membership must
    /// be a binary search, not a linear scan of a (possibly remote-supplied)
    /// watchlist.
    std::vector<bgp::Asn> sorted_watch;
    /// Exactly one of `callback` / `encoded_sink` is engaged, depending on
    /// which subscribe flavor created the subscription.
    SubscriptionCallback callback;
    EncodedEventSink encoded_sink;
  };

  /// Shared subscribe/subscribe_encoded implementation (one of
  /// callback/sink engaged). Replays under the facade mutex, then registers.
  SubscriptionId subscribe_impl(SubscriptionFilter filter, SubscriptionCallback callback,
                                EncodedEventSink sink,
                                std::optional<stream::Epoch> replay_from,
                                bool* replay_complete);

  /// filter.apply with the precomputed watch index.
  [[nodiscard]] static std::vector<stream::ClassChange> apply_subscription(
      const Subscription& subscription, const EpochDelta& delta);

  ServiceConfig config_;
  stream::StreamEngine engine_;
  mutable std::mutex facade_mutex_;  ///< Guards everything below.
  stream::SnapshotPtr published_;    ///< Baseline for the next publish's diff.
  EventLog log_;
  std::vector<Subscription> subscriptions_;
  SubscriptionId next_id_ = 1;
  HistoryProvider history_provider_;  ///< Guarded by facade_mutex_.
  /// Scrape-time gauges (subscriptions, event-log occupancy); registered in
  /// the constructor, declared last so they unregister first.
  obs::ScopedCollector subs_collector_;
  obs::ScopedCollector log_collector_;
};

}  // namespace bgpcu::api

#endif  // BGPCU_API_SERVICE_H
