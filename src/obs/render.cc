#include "obs/render.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace bgpcu::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// "name" or "name{labels}"; `extra` is appended inside the braces (used for
// the histogram `le` label) and forces braces even when `labels` is empty.
std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out.push_back('{');
  out.append(labels);
  if (!extra.empty()) {
    if (!labels.empty()) out.push_back(',');
    out.append(extra);
  }
  out.push_back('}');
  return out;
}

void append_sample(std::string& out, const std::string& name, double value) {
  out.append(name);
  out.push_back(' ');
  out.append(format_value(value));
  out.push_back('\n');
}

void append_histogram(std::string& out, const Family& family, const Series& series) {
  const HistogramData& hist = series.hist.value();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
    if (hist.buckets[i] == 0) continue;  // keep the exposition compact
    cumulative += hist.buckets[i];
    char le[48];
    std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"", Histogram::bucket_bound(i));
    append_sample(out, series_name(family.name + "_bucket", series.labels, le),
                  static_cast<double>(cumulative));
  }
  append_sample(out, series_name(family.name + "_bucket", series.labels, "le=\"+Inf\""),
                static_cast<double>(hist.count));
  append_sample(out, series_name(family.name + "_sum", series.labels),
                static_cast<double>(hist.sum));
  append_sample(out, series_name(family.name + "_count", series.labels),
                static_cast<double>(hist.count));
}

void render_series(std::string& out, const Snapshot& snapshot, bool comments) {
  for (const Family& family : snapshot) {
    if (comments) {
      if (!family.help.empty()) {
        out.append("# HELP ").append(family.name).push_back(' ');
        out.append(family.help).push_back('\n');
      }
      out.append("# TYPE ").append(family.name).push_back(' ');
      out.append(type_name(family.type)).push_back('\n');
    }
    for (const Series& series : family.series) {
      if (family.type == MetricType::kHistogram && series.hist.has_value()) {
        append_histogram(out, family, series);
      } else {
        append_sample(out, series_name(family.name, series.labels), series.value);
      }
    }
  }
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_json_entry(std::string& out, bool& first, const std::string& key,
                       double value) {
  if (!first) out.push_back(',');
  first = false;
  append_json_string(out, key);
  out.push_back(':');
  out.append(format_value(value));
}

}  // namespace

std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.size() * 160);
  render_series(out, snapshot, /*comments=*/true);
  return out;
}

std::string render_plain(const Snapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.size() * 96);
  render_series(out, snapshot, /*comments=*/false);
  return out;
}

std::string render_json(const Snapshot& snapshot, std::int64_t unix_seconds) {
  // Reuse the plain rendering's flattening so the dump file and the endpoint
  // agree on series naming, then re-shape "name value" lines into one object.
  std::string out = "{";
  if (unix_seconds > 0) {
    char ts[48];
    std::snprintf(ts, sizeof(ts), "\"ts\":%" PRId64 ",", unix_seconds);
    out.append(ts);
  }
  out.append("\"metrics\":{");
  bool first = true;
  for (const Family& family : snapshot) {
    for (const Series& series : family.series) {
      if (family.type == MetricType::kHistogram && series.hist.has_value()) {
        const HistogramData& hist = *series.hist;
        append_json_entry(out, first, series_name(family.name + "_sum", series.labels),
                          static_cast<double>(hist.sum));
        append_json_entry(out, first, series_name(family.name + "_count", series.labels),
                          static_cast<double>(hist.count));
      } else {
        append_json_entry(out, first, series_name(family.name, series.labels),
                          series.value);
      }
    }
  }
  out.append("}}");
  return out;
}

}  // namespace bgpcu::obs
