// The repo's metric catalog: every instrument the instrumented layers
// (feed, stream engine, incremental index, api service, net server) update,
// interned once into Registry::global() and handed out as cached references
// so hot paths pay one indirect load, never a by-name lookup. The names,
// types, and label sets here are the documented surface — keep
// docs/OBSERVABILITY.md in sync when touching this file.
#ifndef BGPCU_OBS_WELLKNOWN_H
#define BGPCU_OBS_WELLKNOWN_H

#include "obs/metrics.h"

namespace bgpcu::obs {

/// Cached references into Registry::global(); obtain via obs::metrics().
struct Metrics {
  // --- feed (DirectoryFeed) ---
  Counter& feed_polls;
  Counter& feed_files_parsed;
  Counter& feed_bytes_read;
  Counter& feed_read_failures;
  Counter& feed_decode_errors;
  Counter& feed_tuples_extracted;
  Histogram& feed_poll_ns;

  // --- stream (TupleShard / StreamEngine) ---
  Counter& stream_ingest_accepted;
  Counter& stream_ingest_refreshed;
  Counter& stream_ingest_duplicate;
  Counter& stream_ingest_rejected;
  Counter& stream_ingest_batches;
  Counter& stream_evicted;
  Counter& stream_epoch_advances;
  Counter& stream_journal_deltas;
  Counter& stream_journal_dedups;
  Counter& stream_journal_overflows;

  // --- snapshot pipeline (StreamEngine::snapshot) ---
  Counter& snapshot_sweeps;
  Counter& snapshot_cache_hits;
  Histogram& snapshot_stage_stamp_ns;
  Histogram& snapshot_stage_drain_ns;
  Histogram& snapshot_stage_patch_ns;
  Histogram& snapshot_stage_sweep_ns;
  Histogram& snapshot_stage_install_ns;
  Histogram& snapshot_locked_ns;

  // --- incremental index maintenance ---
  Counter& index_deltas_applied;
  Counter& index_compactions;
  Counter& index_rebuilds;

  // --- api (Service) ---
  Counter& api_query_class_of;
  Counter& api_query_snapshot;
  Counter& api_query_live_counters;
  Counter& api_query_stats;
  Counter& api_query_metrics;
  Counter& api_query_history;
  Counter& api_publishes;
  Counter& api_events_dispatched;
  Counter& api_changes_published;
  Counter& api_replays;

  // --- net (Server) ---
  Counter& net_connections_accepted;
  Counter& net_connections_rejected;
  Counter& net_auth_failures;
  Counter& net_frames_received;
  Counter& net_frames_sent;
  Counter& net_bytes_in;
  Counter& net_bytes_out;
  Counter& net_protocol_errors;
  Counter& net_slow_disconnects;
  Counter& net_pings_received;
  Counter& net_keepalive_probes;
  Counter& net_keepalive_disconnects;
  Counter& net_requests_shed;
  Counter& net_busy_rejections;
  // Event-driven fan-out path: poller wakeups, serialize-once broadcast
  // effectiveness (encodes vs shared-buffer reuses — the reuse ratio is the
  // whole point of the design), and flushes that drained multiple frames.
  Counter& net_fanout_wakeups;
  Counter& net_fanout_encodes;
  Counter& net_fanout_buffer_reuses;
  Counter& net_fanout_coalesced_writes;
  Gauge& net_write_queue_hwm;
  Histogram& request_stage_decode_ns;
  Histogram& request_stage_dispatch_ns;
  Histogram& request_stage_encode_ns;
  Histogram& request_stage_enqueue_ns;

  // --- net (ResilientClient) ---
  Counter& net_client_connects;
  Counter& net_client_reconnects;
  Counter& net_client_gap_resyncs;
  Counter& net_client_busy_deferrals;
  Counter& net_client_pings;

  // --- store (WAL / checkpoints / recovery) ---
  Counter& store_wal_appends;
  Counter& store_wal_bytes;
  Counter& store_wal_syncs;
  Counter& store_segments_opened;
  Counter& store_truncated_records;
  Counter& store_checkpoints;
  Counter& store_checkpoint_bytes;
  Counter& store_gc_segments;
  Counter& store_io_errors;
  Counter& store_recoveries;
  Counter& store_replayed_records;
  Histogram& store_checkpoint_ns;
  Histogram& store_recovery_ns;
};

/// The process-wide catalog, interned on first use. Thread-safe.
[[nodiscard]] Metrics& metrics();

}  // namespace bgpcu::obs

#endif  // BGPCU_OBS_WELLKNOWN_H
