// Lightweight trace spans: a StageTimer measures one pipeline stage with a
// steady-clock read at each end and records the elapsed nanoseconds into a
// stage histogram on destruction (or at an explicit stop()). The snapshot
// pipeline (stamp -> drain -> patch -> sweep -> install) and the request
// path (decode -> dispatch -> encode -> enqueue) are timed this way; the
// per-stage distributions land in the bgpcu_*_stage_duration_ns families
// (see obs/wellknown.h), which is the repo's tracing surface — cheap enough
// to stay on in production, queryable from any metrics endpoint.
#ifndef BGPCU_OBS_TRACE_H
#define BGPCU_OBS_TRACE_H

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace bgpcu::obs {

/// RAII span over one stage. Records once: on stop() or destruction,
/// whichever comes first. Not thread-safe (one timer per stage per thread).
class StageTimer {
 public:
  using Clock = std::chrono::steady_clock;

  explicit StageTimer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(Clock::now()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { (void)stop(); }

  /// Ends the span and records it; returns the elapsed nanoseconds.
  /// Subsequent calls return 0 and record nothing.
  std::uint64_t stop() noexcept {
    if (histogram_ == nullptr) return 0;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
    histogram_->observe(ns);
    histogram_ = nullptr;
    return ns;
  }

 private:
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace bgpcu::obs

#endif  // BGPCU_OBS_TRACE_H
