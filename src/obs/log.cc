#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace bgpcu::obs {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

bool needs_quoting(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '=' || c == '"' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void append_value(std::string& line, const std::string& value) {
  if (!needs_quoting(value)) {
    line.append(value);
    return;
  }
  line.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') line.push_back('\\');
    if (c == '\n') {
      line.append("\\n");
    } else {
      line.push_back(c);
    }
  }
  line.push_back('"');
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "info") return LogLevel::kInfo;
  if (text == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "info";
}

void log(LogLevel level, std::string_view event, std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) > g_log_level.load(std::memory_order_relaxed)) return;

  char ts[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);

  std::string line;
  line.reserve(96);
  line.append("ts=").append(ts);
  line.append(" level=").append(log_level_name(level));
  line.append(" event=").append(event);
  for (const auto& [key, value] : fields) {
    line.push_back(' ');
    line.append(key);
    line.push_back('=');
    append_value(line, value);
  }
  line.push_back('\n');

  const std::lock_guard lock(g_log_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace bgpcu::obs
