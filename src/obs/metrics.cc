#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace bgpcu::obs {

namespace detail {

std::atomic<bool> g_enabled{true};

std::size_t thread_lane(std::size_t lanes) noexcept {
  static thread_local const std::size_t hashed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hashed % lanes;
}

}  // namespace detail

bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// --------------------------------------------------------- ScopedCollector --

ScopedCollector& ScopedCollector::operator=(ScopedCollector&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void ScopedCollector::reset() {
  if (registry_ != nullptr) registry_->remove_collector(id_);
  registry_ = nullptr;
  id_ = 0;
}

// ------------------------------------------------------------------ Registry --

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Instrument& Registry::intern(std::string_view name, std::string_view help,
                                       std::string_view labels, MetricType type) {
  std::string key;
  key.reserve(name.size() + 1 + labels.size());
  key.append(name);
  key.push_back('\0');
  key.append(labels);

  const std::lock_guard lock(mutex_);
  const auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    if (it->second.type != type) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different type");
    }
    return it->second;
  }
  Instrument instrument;
  instrument.name = name;
  instrument.help = help;
  instrument.labels = labels;
  instrument.type = type;
  switch (type) {
    case MetricType::kCounter:
      instrument.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      instrument.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      instrument.histogram = std::make_unique<Histogram>();
      break;
  }
  return instruments_.emplace(std::move(key), std::move(instrument)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::string_view labels) {
  return *intern(name, help, labels, MetricType::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view labels) {
  return *intern(name, help, labels, MetricType::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::string_view labels) {
  return *intern(name, help, labels, MetricType::kHistogram).histogram;
}

ScopedCollector Registry::add_collector(std::string_view name, std::string_view help,
                                        std::string_view labels, std::function<double()> fn) {
  const std::lock_guard lock(mutex_);
  const auto id = next_collector_id_++;
  collectors_.emplace(id, CollectorEntry{std::string(name), std::string(help),
                                         std::string(labels), std::move(fn)});
  return {this, id};
}

void Registry::remove_collector(std::uint64_t id) {
  const std::lock_guard lock(mutex_);
  collectors_.erase(id);
}

Snapshot Registry::collect() const {
  // Accumulate series keyed by (family, labels); the map key ordering gives
  // the sorted output directly. Held across collector callbacks — see the
  // mutex_ comment in the header for why that is the synchronization model.
  struct SeriesAcc {
    MetricType type = MetricType::kGauge;
    std::string help;
    double value = 0;
    std::optional<HistogramData> hist;
  };
  std::map<std::string, std::map<std::string, SeriesAcc>> families;

  const std::lock_guard lock(mutex_);
  for (const auto& [key, instrument] : instruments_) {
    auto& acc = families[instrument.name][instrument.labels];
    acc.type = instrument.type;
    if (acc.help.empty()) acc.help = instrument.help;
    switch (instrument.type) {
      case MetricType::kCounter:
        acc.value += static_cast<double>(instrument.counter->value());
        break;
      case MetricType::kGauge:
        acc.value += static_cast<double>(instrument.gauge->value());
        break;
      case MetricType::kHistogram: {
        HistogramData data;
        data.buckets.resize(Histogram::kBuckets);
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          data.buckets[i] = instrument.histogram->bucket(i);
        }
        data.count = instrument.histogram->count();
        data.sum = instrument.histogram->sum();
        acc.hist = std::move(data);
        break;
      }
    }
  }
  for (const auto& [id, entry] : collectors_) {
    auto& acc = families[entry.name][entry.labels];
    acc.type = MetricType::kGauge;
    if (acc.help.empty()) acc.help = entry.help;
    acc.value += entry.fn();
  }

  Snapshot snapshot;
  snapshot.reserve(families.size());
  for (auto& [name, series_map] : families) {
    Family family;
    family.name = name;
    family.series.reserve(series_map.size());
    for (auto& [labels, acc] : series_map) {
      family.type = acc.type;
      if (family.help.empty()) family.help = acc.help;
      Series series;
      series.labels = labels;
      series.value = acc.value;
      series.hist = std::move(acc.hist);
      family.series.push_back(std::move(series));
    }
    snapshot.push_back(std::move(family));
  }
  return snapshot;
}

}  // namespace bgpcu::obs
