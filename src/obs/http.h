// Minimal built-in HTTP server for the telemetry surface: a single poller
// thread multiplexing every scrape, answering GET /metrics (Prometheus text
// exposition), GET /metrics.json (the flat JSON rendering), and GET
// /healthz ("ok"). One request per connection, Connection: close — exactly
// what a Prometheus scraper or a curl-based health check needs, and nothing
// more. Because clients share one readiness loop, a stalled or half-sent
// scrape never blocks /healthz for anyone else; stalled peers are shed on a
// per-phase deadline. Runs on a net::TcpListener so port 0 resolves to an
// ephemeral port readable via port() (the CI scrape check depends on that).
#ifndef BGPCU_OBS_HTTP_H
#define BGPCU_OBS_HTTP_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace bgpcu::net {
class TcpListener;
class Poller;
}  // namespace bgpcu::net

namespace bgpcu::obs {

class MetricsHttpServer {
 public:
  /// Binds and starts serving immediately. `registry` must outlive the
  /// server (Registry::global() trivially does). Throws net::TransportError
  /// if the port cannot be bound.
  MetricsHttpServer(const std::string& host, std::uint16_t port,
                    const Registry& registry);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The actually bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stops accepting, closes the listener, and joins the serving thread.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  void serve_loop();

  const Registry& registry_;
  std::unique_ptr<net::TcpListener> listener_;
  std::unique_ptr<net::Poller> poller_;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

}  // namespace bgpcu::obs

#endif  // BGPCU_OBS_HTTP_H
