// Process-wide metrics registry: the observability substrate every layer
// reports through. Three instrument kinds — monotonic Counters, set/add/max
// Gauges, and fixed log-bucket Histograms — all updated with relaxed atomics
// so hot paths (shard ingest, sweep kernels, per-frame network work) never
// take a lock or issue a fence to be observable. Counters additionally
// stripe their value across cache-line-padded lanes (selected per thread)
// that are only merged at scrape time, so concurrent ingest workers bumping
// the same counter do not bounce one cache line between cores.
//
// Instruments are owned by a Registry and identified by (family name, label
// set); asking for the same identity twice returns the same instrument, so
// call sites can cache references (see obs::metrics() in wellknown.h for the
// repo's instrument catalog). Point-in-time values that live inside an
// object (live tuples, open connections, queue depths) are exposed through
// callback collectors: the object registers a closure evaluated at scrape
// time and holds the returned ScopedCollector, whose destructor unregisters
// it — multiple collectors publishing the same series (several engines in
// one process) are summed at scrape.
//
// A scrape (Registry::collect) produces an immutable Snapshot — a list of
// metric families with their series — that the renderers (obs/render.h),
// the wire metrics frame (api/wire.h), and the HTTP endpoint (obs/http.h)
// all consume, so every exposure surface reports the same numbers.
#ifndef BGPCU_OBS_METRICS_H
#define BGPCU_OBS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgpcu::obs {

/// Global hot-path switch: when false, instrument updates are dropped at the
/// call site (one relaxed load + branch). Exists so the ingest-overhead
/// bench can measure instrumented vs. uninstrumented throughput in one
/// binary; production leaves it on.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
/// Stable per-thread lane index in [0, lanes); cheap after first call.
[[nodiscard]] std::size_t thread_lane(std::size_t lanes) noexcept;
}  // namespace detail

/// Monotonic counter, striped across cache-line-padded lanes. add() from any
/// thread; value() merges the lanes (a snapshot, not a fence).
class Counter {
 public:
  static constexpr std::size_t kLanes = 8;

  /// Adds `n` on this thread's lane. `lane` overrides the thread-hash pick —
  /// per-shard call sites pass their shard index so a shard's updates always
  /// land on the same stripe.
  void add(std::uint64_t n = 1,
           std::size_t lane = std::numeric_limits<std::size_t>::max()) noexcept {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    if (lane == std::numeric_limits<std::size_t>::max()) {
      lane = detail::thread_lane(kLanes);
    }
    lanes_[lane % kLanes].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& lane : lanes_) total += lane.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Lane, kLanes> lanes_{};
};

/// Point-in-time integer value: set/add/max_of from any thread. For values
/// computed at scrape time, prefer a callback collector instead.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(std::int64_t n) noexcept {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if larger (lifetime high-water mark).
  void max_of(std::int64_t v) noexcept {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    auto cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log-bucket histogram for latency/size distributions. Bucket i
/// counts observations <= 2^i (and > 2^(i-1)); the last bucket is +Inf.
/// Units are whatever the caller observes (the repo's duration histograms
/// observe nanoseconds and say so in the family name).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  ///< le = 1, 2, 4, ... 2^38, +Inf.

  void observe(std::uint64_t v) noexcept {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Upper bound of bucket `i` (the Prometheus `le` value); the final bucket
  /// has no finite bound.
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i) noexcept {
    return std::uint64_t{1} << i;
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v <= 1) return 0;
    const auto width = static_cast<std::size_t>(std::bit_width(v - 1));
    return width < kBuckets - 1 ? width : kBuckets - 1;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// ---------------------------------------------------------------- scrape --

enum class MetricType : std::uint8_t { kCounter = 1, kGauge = 2, kHistogram = 3 };

/// Raw per-bucket counts (NOT cumulative; renderers cumulate for the
/// Prometheus `le` convention) plus the observation sum and count.
struct HistogramData {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

/// One labeled series of a family. `labels` is the pre-rendered label body
/// without braces (`stage="sweep"`, `outcome="accepted",shard="3"`), empty
/// for an unlabeled series. Exactly one of value/hist is meaningful,
/// matching the family's type.
struct Series {
  std::string labels;
  double value = 0;
  std::optional<HistogramData> hist;

  friend bool operator==(const Series&, const Series&) = default;
};

/// One metric family: every series sharing a name, type, and help string.
struct Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Series> series;

  friend bool operator==(const Family&, const Family&) = default;
};

/// A consistent-enough scrape of the registry (values are relaxed reads).
/// Families sorted by name, series by label string.
using Snapshot = std::vector<Family>;

// -------------------------------------------------------------- registry --

class Registry;

/// RAII handle for a callback collector; unregisters on destruction.
/// Destruction blocks until any in-flight collect() finishes, so a callback
/// can never run after the object it reads is gone.
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(Registry* registry, std::uint64_t id) : registry_(registry), id_(id) {}
  ScopedCollector(ScopedCollector&& other) noexcept { *this = std::move(other); }
  ScopedCollector& operator=(ScopedCollector&& other) noexcept;
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;
  ~ScopedCollector() { reset(); }

  void reset();

 private:
  Registry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class Registry {
 public:
  /// The process-wide registry every layer reports into.
  [[nodiscard]] static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Instrument accessors: the first call for a (name, labels) identity
  /// creates the instrument; later calls return the same object, whose
  /// address is stable for the registry's lifetime. `labels` is the rendered
  /// label body without braces, or empty. Asking for an existing identity
  /// with a different type throws std::logic_error.
  Counter& counter(std::string_view name, std::string_view help,
                   std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::string_view labels = {});

  /// Registers a gauge series computed at scrape time. Collectors sharing a
  /// (name, labels) identity are summed — several engines in one process
  /// publish one combined series. The callback runs on the scraping thread
  /// and may take its owner's locks; it must not call back into this
  /// Registry. Keep the returned handle alive exactly as long as the state
  /// the callback reads.
  [[nodiscard]] ScopedCollector add_collector(std::string_view name, std::string_view help,
                                              std::string_view labels,
                                              std::function<double()> fn);

  /// Scrapes everything: instruments plus callback collectors, merged into
  /// sorted families.
  [[nodiscard]] Snapshot collect() const;

 private:
  friend class ScopedCollector;

  struct Instrument {
    std::string name;
    std::string help;
    std::string labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct CollectorEntry {
    std::string name;
    std::string help;
    std::string labels;
    std::function<double()> fn;
  };

  void remove_collector(std::uint64_t id);
  Instrument& intern(std::string_view name, std::string_view help, std::string_view labels,
                     MetricType type);

  /// Guards the maps; collect() holds it across callback evaluation, which
  /// is what makes ScopedCollector destruction a synchronization point.
  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;  ///< Key: name + '\0' + labels.
  std::map<std::uint64_t, CollectorEntry> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

}  // namespace bgpcu::obs

#endif  // BGPCU_OBS_METRICS_H
