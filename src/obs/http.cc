#include "obs/http.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/poller.h"
#include "net/socket.h"
#include "obs/render.h"

namespace bgpcu::obs {

namespace {

// Requests are a single GET line plus headers we ignore; 4 KiB is generous.
constexpr std::size_t kMaxRequestBytes = 4096;
// Per-phase deadline: a client gets this long to finish sending its request
// line, and again this long to drain the response. A scraper that stalls in
// either phase is dropped — it never blocks other clients, because every
// connection is multiplexed onto the one poller loop.
constexpr auto kPhaseDeadline = std::chrono::milliseconds(2000);

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, content_type, body.size());
  return std::string(head) + body;
}

/// Extracts the request path from "GET /path HTTP/1.1..."; empty when the
/// request line is not a GET.
std::string request_path(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return {};
  const auto end = request.find(' ', 4);
  if (end == std::string::npos) return {};
  return request.substr(4, end - 4);
}

bool request_complete(const std::string& request) {
  return request.find("\r\n\r\n") != std::string::npos ||
         request.find("\n\n") != std::string::npos;
}

/// One in-flight scrape: reading the request until the header terminator,
/// then writing the response from `offset`. All state is owned by the serve
/// loop thread.
struct Client {
  std::unique_ptr<net::Connection> conn;
  int fd = -1;
  std::string request;
  std::string response;
  std::size_t offset = 0;
  bool writing = false;
  std::chrono::steady_clock::time_point deadline;
};

}  // namespace

MetricsHttpServer::MetricsHttpServer(const std::string& host, std::uint16_t port,
                                     const Registry& registry)
    : registry_(registry),
      listener_(std::make_unique<net::TcpListener>(host, port)),
      poller_(net::Poller::create(net::default_poller_backend())) {
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

std::uint16_t MetricsHttpServer::port() const noexcept { return listener_->port(); }

void MetricsHttpServer::stop() {
  running_.store(false, std::memory_order_relaxed);
  poller_->wake();
  if (thread_.joinable()) thread_.join();
  listener_->close();
}

void MetricsHttpServer::serve_loop() {
  constexpr std::uint64_t kListenerToken = 0;
  poller_->set(listener_->fd(), kListenerToken, /*want_read=*/true,
               /*want_write=*/false);

  std::unordered_map<std::uint64_t, Client> clients;
  std::uint64_t next_token = 1;
  std::vector<net::PollerEvent> events;

  const auto drop = [&](std::uint64_t token) {
    const auto it = clients.find(token);
    if (it == clients.end()) return;
    poller_->remove(it->second.fd);
    it->second.conn->close();
    clients.erase(it);
  };

  // Routes the finished request and switches the client to the write phase.
  const auto build_response = [&](Client& client) {
    const std::string path = request_path(client.request);
    if (path == "/metrics" || path == "/") {
      client.response =
          http_response("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                        render_prometheus(registry_.collect()));
    } else if (path == "/metrics.json") {
      client.response = http_response(
          "200 OK", "application/json",
          render_json(registry_.collect(),
                      static_cast<std::int64_t>(std::time(nullptr))) + "\n");
    } else if (path == "/healthz") {
      client.response = http_response("200 OK", "text/plain; charset=utf-8", "ok\n");
    } else if (path.empty()) {
      client.response = http_response("405 Method Not Allowed",
                                      "text/plain; charset=utf-8",
                                      "only GET is supported\n");
    } else {
      client.response = http_response("404 Not Found", "text/plain; charset=utf-8",
                                      "try /metrics, /metrics.json, or /healthz\n");
    }
    client.writing = true;
    client.offset = 0;
    client.deadline = std::chrono::steady_clock::now() + kPhaseDeadline;
  };

  // Writes as much of the response as the socket accepts right now. Returns
  // false when the client is finished (drained or gone) and was dropped.
  const auto flush_client = [&](std::uint64_t token) -> bool {
    auto& client = clients.at(token);
    while (client.offset < client.response.size()) {
      std::size_t n = 0;
      const auto status = client.conn->try_write(
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(client.response.data()) +
                  client.offset,
              client.response.size() - client.offset),
          n);
      if (status == net::IoStatus::kOk) {
        client.offset += n;
        continue;
      }
      if (status == net::IoStatus::kWouldBlock) {
        poller_->set(client.fd, token, /*want_read=*/false, /*want_write=*/true);
        return true;
      }
      drop(token);  // peer gone mid-response
      return false;
    }
    client.conn->shutdown_write();
    drop(token);
    return false;
  };

  const auto read_client = [&](std::uint64_t token) {
    auto& client = clients.at(token);
    std::uint8_t chunk[1024];
    while (client.request.size() < kMaxRequestBytes &&
           !request_complete(client.request)) {
      std::size_t n = 0;
      const auto status =
          client.conn->try_read(std::span<std::uint8_t>(chunk, sizeof(chunk)), n);
      if (status == net::IoStatus::kOk) {
        client.request.append(reinterpret_cast<const char*>(chunk), n);
        continue;
      }
      if (status == net::IoStatus::kWouldBlock) return;  // wait for more bytes
      // EOF: respond to whatever arrived (a bare half-closed GET still gets
      // its answer, matching the blocking server), or drop a silent peer.
      if (client.request.empty()) {
        drop(token);
        return;
      }
      break;
    }
    build_response(client);
    flush_client(token);
  };

  while (running_.load(std::memory_order_relaxed)) {
    int timeout_ms = -1;
    if (!clients.empty()) {
      auto soonest = std::chrono::steady_clock::time_point::max();
      for (const auto& [token, client] : clients) {
        if (client.deadline < soonest) soonest = client.deadline;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            soonest - std::chrono::steady_clock::now())
                            .count();
      timeout_ms = left < 0 ? 0 : static_cast<int>(std::min<long long>(left, 60000));
    }

    (void)poller_->wait(events, timeout_ms);
    if (!running_.load(std::memory_order_relaxed)) break;

    for (const auto& event : events) {
      if (event.token == kListenerToken) {
        while (true) {
          std::unique_ptr<net::Connection> conn;
          try {
            conn = listener_->try_accept();
          } catch (const net::TransportError&) {
            break;  // transient accept failure; the listener is still up
          }
          if (conn == nullptr) break;
          const auto pi = conn->poll_info();
          if (!pi.pollable()) {
            conn->close();  // cannot happen for TCP; refuse rather than stall
            continue;
          }
          const std::uint64_t token = next_token++;
          Client client;
          client.conn = std::move(conn);
          client.fd = pi.read_fd;
          client.deadline = std::chrono::steady_clock::now() + kPhaseDeadline;
          poller_->set(client.fd, token, /*want_read=*/true, /*want_write=*/false);
          clients.emplace(token, std::move(client));
        }
        continue;
      }
      const auto it = clients.find(event.token);
      if (it == clients.end()) continue;
      if (it->second.writing) {
        (void)flush_client(event.token);
      } else {
        read_client(event.token);
      }
    }

    // Expire clients that sat past their phase deadline (stalled scrapers).
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> expired;
    for (const auto& [token, client] : clients) {
      if (client.deadline <= now) expired.push_back(token);
    }
    for (const auto token : expired) drop(token);
  }

  for (auto& [token, client] : clients) {
    poller_->remove(client.fd);
    client.conn->close();
  }
}

}  // namespace bgpcu::obs
