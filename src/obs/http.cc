#include "obs/http.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <span>

#include "net/socket.h"
#include "obs/render.h"

namespace bgpcu::obs {

namespace {

// Requests are a single GET line plus headers we ignore; 4 KiB is generous.
constexpr std::size_t kMaxRequestBytes = 4096;
constexpr auto kReadTimeout = std::chrono::milliseconds(2000);

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, content_type, body.size());
  return std::string(head) + body;
}

/// Extracts the request path from "GET /path HTTP/1.1..."; empty when the
/// request line is not a GET.
std::string request_path(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return {};
  const auto end = request.find(' ', 4);
  if (end == std::string::npos) return {};
  return request.substr(4, end - 4);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(const std::string& host, std::uint16_t port,
                                     const Registry& registry)
    : registry_(registry),
      listener_(std::make_unique<net::TcpListener>(host, port)) {
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

std::uint16_t MetricsHttpServer::port() const noexcept { return listener_->port(); }

void MetricsHttpServer::stop() {
  listener_->close();
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::serve_loop() {
  while (true) {
    std::unique_ptr<net::Connection> conn;
    try {
      conn = listener_->accept();
    } catch (const net::TransportError&) {
      continue;  // transient accept failure; the listener is still up
    }
    if (conn == nullptr) return;  // listener closed — shutdown

    conn->set_read_timeout(kReadTimeout);
    std::string request;
    std::uint8_t chunk[1024];
    // Read until the blank line ending the headers; a slow or silent client
    // hits the read timeout and is dropped without blocking the loop.
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
      const auto n = conn->read_some(std::span<std::uint8_t>(chunk, sizeof(chunk)));
      if (n == 0) break;
      request.append(reinterpret_cast<const char*>(chunk), n);
    }
    if (request.empty()) continue;

    const std::string path = request_path(request);
    std::string response;
    if (path == "/metrics" || path == "/") {
      response = http_response("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                               render_prometheus(registry_.collect()));
    } else if (path == "/metrics.json") {
      response = http_response(
          "200 OK", "application/json",
          render_json(registry_.collect(),
                      static_cast<std::int64_t>(std::time(nullptr))) + "\n");
    } else if (path == "/healthz") {
      response = http_response("200 OK", "text/plain; charset=utf-8", "ok\n");
    } else if (path.empty()) {
      response = http_response("405 Method Not Allowed", "text/plain; charset=utf-8",
                               "only GET is supported\n");
    } else {
      response = http_response("404 Not Found", "text/plain; charset=utf-8",
                               "try /metrics, /metrics.json, or /healthz\n");
    }
    conn->write_all(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(response.data()), response.size()));
    conn->shutdown_write();
    conn->close();
  }
}

}  // namespace bgpcu::obs
