#include "obs/wellknown.h"

namespace bgpcu::obs {

Metrics& metrics() {
  static Metrics catalog = [] {
    auto& r = Registry::global();
    const auto ingest_help = "Tuples offered to the stream engine by outcome";
    const auto query_help = "Service queries answered by kind";
    const auto snap_stage_help =
        "Snapshot pipeline stage duration in nanoseconds by stage";
    const auto req_stage_help = "Request path stage duration in nanoseconds by stage";
    return Metrics{
        // feed
        .feed_polls = r.counter("bgpcu_feed_polls_total", "Directory feed poll cycles"),
        .feed_files_parsed = r.counter("bgpcu_feed_files_parsed_total",
                                       "Files whose new bytes yielded complete records"),
        .feed_bytes_read =
            r.counter("bgpcu_feed_bytes_read_total", "MRT bytes consumed by the feed"),
        .feed_read_failures = r.counter("bgpcu_feed_read_failures_total",
                                        "Unreadable files (retried next poll)"),
        .feed_decode_errors = r.counter("bgpcu_feed_decode_errors_total",
                                        "MRT records skipped due to body corruption"),
        .feed_tuples_extracted = r.counter("bgpcu_feed_tuples_extracted_total",
                                           "Sanitized tuples produced by feed polls"),
        .feed_poll_ns = r.histogram("bgpcu_feed_poll_duration_ns",
                                    "Directory feed poll latency in nanoseconds"),
        // stream
        .stream_ingest_accepted =
            r.counter("bgpcu_stream_tuples_total", ingest_help, "outcome=\"accepted\""),
        .stream_ingest_refreshed =
            r.counter("bgpcu_stream_tuples_total", ingest_help, "outcome=\"refreshed\""),
        .stream_ingest_duplicate =
            r.counter("bgpcu_stream_tuples_total", ingest_help, "outcome=\"duplicate\""),
        .stream_ingest_rejected =
            r.counter("bgpcu_stream_tuples_total", ingest_help, "outcome=\"rejected\""),
        .stream_ingest_batches =
            r.counter("bgpcu_stream_ingest_batches_total", "Ingest batch calls"),
        .stream_evicted =
            r.counter("bgpcu_stream_evicted_total", "Tuples aged out of the window"),
        .stream_epoch_advances =
            r.counter("bgpcu_stream_epoch_advances_total", "Epoch advances"),
        .stream_journal_deltas = r.counter("bgpcu_stream_journal_deltas_total",
                                           "Index deltas journaled by shards"),
        .stream_journal_dedups =
            r.counter("bgpcu_stream_journal_dedups_total",
                      "Add+remove journal pairs cancelled before a drain"),
        .stream_journal_overflows = r.counter("bgpcu_stream_journal_overflows_total",
                                              "Shard journal overflows (forced rebuilds)"),
        // snapshot pipeline
        .snapshot_sweeps =
            r.counter("bgpcu_snapshot_sweeps_total", "Cold snapshots (collected + swept)"),
        .snapshot_cache_hits = r.counter("bgpcu_snapshot_cache_hits_total",
                                         "Snapshots served from the cached result"),
        .snapshot_stage_stamp_ns = r.histogram("bgpcu_snapshot_stage_duration_ns",
                                               snap_stage_help, "stage=\"stamp\""),
        .snapshot_stage_drain_ns = r.histogram("bgpcu_snapshot_stage_duration_ns",
                                               snap_stage_help, "stage=\"drain\""),
        .snapshot_stage_patch_ns = r.histogram("bgpcu_snapshot_stage_duration_ns",
                                               snap_stage_help, "stage=\"patch\""),
        .snapshot_stage_sweep_ns = r.histogram("bgpcu_snapshot_stage_duration_ns",
                                               snap_stage_help, "stage=\"sweep\""),
        .snapshot_stage_install_ns = r.histogram("bgpcu_snapshot_stage_duration_ns",
                                                 snap_stage_help, "stage=\"install\""),
        .snapshot_locked_ns =
            r.histogram("bgpcu_snapshot_locked_duration_ns",
                        "Exclusive-lock (collect) time per cold snapshot, nanoseconds"),
        // index
        .index_deltas_applied = r.counter("bgpcu_index_deltas_applied_total",
                                          "Add/remove deltas patched into the index"),
        .index_compactions = r.counter("bgpcu_index_compactions_total",
                                       "Lazy tombstone group compactions"),
        .index_rebuilds =
            r.counter("bgpcu_index_rebuilds_total", "Full index rebuilds (all causes)"),
        // api
        .api_query_class_of =
            r.counter("bgpcu_api_queries_total", query_help, "kind=\"class_of\""),
        .api_query_snapshot =
            r.counter("bgpcu_api_queries_total", query_help, "kind=\"snapshot\""),
        .api_query_live_counters =
            r.counter("bgpcu_api_queries_total", query_help, "kind=\"live_counters\""),
        .api_query_stats = r.counter("bgpcu_api_queries_total", query_help, "kind=\"stats\""),
        .api_query_metrics =
            r.counter("bgpcu_api_queries_total", query_help, "kind=\"metrics\""),
        .api_query_history =
            r.counter("bgpcu_api_queries_total", query_help, "kind=\"history\""),
        .api_publishes = r.counter("bgpcu_api_publishes_total", "Service publish calls"),
        .api_events_dispatched = r.counter("bgpcu_api_events_dispatched_total",
                                           "Filtered epoch batches delivered to subscribers"),
        .api_changes_published = r.counter("bgpcu_api_changes_published_total",
                                           "Class changes in published epoch batches"),
        .api_replays = r.counter("bgpcu_api_replays_total", "Event-log replay requests"),
        // net
        .net_connections_accepted =
            r.counter("bgpcu_net_connections_accepted_total", "Connections accepted"),
        .net_connections_rejected = r.counter("bgpcu_net_connections_rejected_total",
                                              "Connections turned away at the limit"),
        .net_auth_failures =
            r.counter("bgpcu_net_auth_failures_total", "Hello frames with a bad token"),
        .net_frames_received =
            r.counter("bgpcu_net_frames_received_total", "Protocol frames read from clients"),
        .net_frames_sent =
            r.counter("bgpcu_net_frames_sent_total", "Protocol frames written to clients"),
        .net_bytes_in = r.counter("bgpcu_net_bytes_in_total", "Bytes read from clients"),
        .net_bytes_out = r.counter("bgpcu_net_bytes_out_total", "Bytes written to clients"),
        .net_protocol_errors = r.counter("bgpcu_net_protocol_errors_total",
                                         "kError frames sent for invalid client input"),
        .net_slow_disconnects = r.counter("bgpcu_net_slow_disconnects_total",
                                          "Connections dropped for write-queue overflow"),
        .net_pings_received = r.counter("bgpcu_net_pings_received_total",
                                        "Client keepalive probes answered with kPong"),
        .net_keepalive_probes = r.counter("bgpcu_net_keepalive_probes_total",
                                          "Server-initiated kPing probes on idle connections"),
        .net_keepalive_disconnects =
            r.counter("bgpcu_net_keepalive_disconnects_total",
                      "Connections dropped after an unanswered keepalive probe"),
        .net_requests_shed = r.counter("bgpcu_net_requests_shed_total",
                                       "Rate-limited requests answered busy before dispatch"),
        .net_busy_rejections = r.counter("bgpcu_net_busy_rejections_total",
                                         "Admission rejections sent as structured kBusy"),
        .net_fanout_wakeups = r.counter("bgpcu_net_fanout_wakeups_total",
                                        "IO event-loop poller wakeups"),
        .net_fanout_encodes = r.counter("bgpcu_net_fanout_encodes_total",
                                        "Distinct event payload serializations"),
        .net_fanout_buffer_reuses =
            r.counter("bgpcu_net_fanout_buffer_reuses_total",
                      "Events delivered from an already-encoded shared buffer"),
        .net_fanout_coalesced_writes =
            r.counter("bgpcu_net_fanout_coalesced_writes_total",
                      "Flushes that drained more than one queued frame"),
        .net_write_queue_hwm =
            r.gauge("bgpcu_net_write_queue_high_water",
                    "Largest per-connection write-queue depth seen, in frames"),
        .request_stage_decode_ns = r.histogram("bgpcu_request_stage_duration_ns",
                                               req_stage_help, "stage=\"decode\""),
        .request_stage_dispatch_ns = r.histogram("bgpcu_request_stage_duration_ns",
                                                 req_stage_help, "stage=\"dispatch\""),
        .request_stage_encode_ns = r.histogram("bgpcu_request_stage_duration_ns",
                                               req_stage_help, "stage=\"encode\""),
        .request_stage_enqueue_ns = r.histogram("bgpcu_request_stage_duration_ns",
                                                req_stage_help, "stage=\"enqueue\""),
        // net (ResilientClient)
        .net_client_connects = r.counter("bgpcu_net_client_connects_total",
                                         "Successful ResilientClient handshakes"),
        .net_client_reconnects =
            r.counter("bgpcu_net_client_reconnects_total",
                      "Connections re-established after a link failure"),
        .net_client_gap_resyncs =
            r.counter("bgpcu_net_client_gap_resyncs_total",
                      "Snapshot re-syncs after the replay horizon passed the resume epoch"),
        .net_client_busy_deferrals =
            r.counter("bgpcu_net_client_busy_deferrals_total",
                      "Busy/retry-after responses honored with a deferred retry"),
        .net_client_pings =
            r.counter("bgpcu_net_client_pings_total", "Client-initiated keepalive probes"),
        // store
        .store_wal_appends =
            r.counter("bgpcu_store_wal_appends_total", "WAL records appended"),
        .store_wal_bytes =
            r.counter("bgpcu_store_wal_bytes_total", "WAL bytes appended (framed)"),
        .store_wal_syncs = r.counter("bgpcu_store_wal_syncs_total", "WAL fsync calls"),
        .store_segments_opened =
            r.counter("bgpcu_store_segments_opened_total", "WAL segment files created"),
        .store_truncated_records =
            r.counter("bgpcu_store_truncated_records_total",
                      "Torn/corrupt WAL records dropped by the reader"),
        .store_checkpoints =
            r.counter("bgpcu_store_checkpoints_total", "Checkpoints written"),
        .store_checkpoint_bytes = r.counter("bgpcu_store_checkpoint_bytes_total",
                                            "Bytes written across checkpoint files"),
        .store_gc_segments = r.counter("bgpcu_store_gc_segments_total",
                                       "WAL segments deleted after checkpoints"),
        .store_io_errors = r.counter("bgpcu_store_io_errors_total",
                                     "Store IO failures (append/checkpoint degraded)"),
        .store_recoveries =
            r.counter("bgpcu_store_recoveries_total", "Startup recoveries performed"),
        .store_replayed_records = r.counter("bgpcu_store_replayed_records_total",
                                            "WAL records replayed during recovery"),
        .store_checkpoint_ns = r.histogram("bgpcu_store_checkpoint_duration_ns",
                                           "Checkpoint write latency in nanoseconds"),
        .store_recovery_ns = r.histogram("bgpcu_store_recovery_duration_ns",
                                         "Startup recovery latency in nanoseconds"),
    };
  }();
  return catalog;
}

}  // namespace bgpcu::obs
