// Structured, leveled logging for the daemons: one line per event on
// stderr, `ts=<iso8601> level=<level> event=<name> key=value ...`. Values
// containing spaces or '=' are double-quoted. A process-wide level gate
// (set via --log-level) drops suppressed lines before any formatting work.
// Deliberately tiny: the daemons need greppable startup/shutdown/error
// breadcrumbs, not a logging framework.
#ifndef BGPCU_OBS_LOG_H
#define BGPCU_OBS_LOG_H

#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace bgpcu::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// The process log level; lines above it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "error" | "warn" | "info" | "debug"; nullopt otherwise.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text) noexcept;
[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;

using LogField = std::pair<std::string_view, std::string>;

/// Emits one structured line to stderr if `level` passes the gate. Lines are
/// mutex-serialized so concurrent threads never interleave mid-line.
void log(LogLevel level, std::string_view event, std::initializer_list<LogField> fields = {});

inline void log_error(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kError, event, fields);
}
inline void log_warn(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kWarn, event, fields);
}
inline void log_info(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kInfo, event, fields);
}
inline void log_debug(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kDebug, event, fields);
}

}  // namespace bgpcu::obs

#endif  // BGPCU_OBS_LOG_H
