// Rendering a scraped obs::Snapshot for the three exposure surfaces:
//  - Prometheus text exposition (format 0.0.4) for the /metrics endpoint —
//    HELP/TYPE comments, cumulative histogram buckets with `le` labels;
//  - a flat JSON object for the periodic metrics dump (one JSON document per
//    call; the daemon writes one per line, so a dump file is JSONL);
//  - a flat "name{labels} value" listing shared by `bgpcu_query metrics`.
// All three render the same Snapshot, so every surface agrees byte-for-byte
// on what was scraped.
#ifndef BGPCU_OBS_RENDER_H
#define BGPCU_OBS_RENDER_H

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace bgpcu::obs {

/// Prometheus text exposition of a scrape. Histograms expand to cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
[[nodiscard]] std::string render_prometheus(const Snapshot& snapshot);

/// One flat JSON object: {"ts":<unix_seconds>,"metrics":{"name{labels}":value}}.
/// Histograms flatten to name_sum / name_count / name_bucket entries (same
/// flattening as the Prometheus rendering). `unix_seconds` <= 0 omits "ts".
[[nodiscard]] std::string render_json(const Snapshot& snapshot, std::int64_t unix_seconds);

/// Plain "name{labels} value" lines (the Prometheus rendering without the
/// HELP/TYPE comments) — what `bgpcu_query metrics` prints.
[[nodiscard]] std::string render_plain(const Snapshot& snapshot);

/// Formats a sample value the Prometheus way: integral values without a
/// decimal point, everything else with enough digits to round-trip.
[[nodiscard]] std::string format_value(double value);

}  // namespace bgpcu::obs

#endif  // BGPCU_OBS_RENDER_H
