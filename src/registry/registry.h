// Number-resource allocation registry. Stands in for the RIR delegation
// files the paper uses to drop "routing information that includes
// unallocated prefixes or ASNs" (§4.1) and to decide whether a community's
// upper field is a public ASN (the peer/foreign/stray/private grouping of
// §3.2). IANA special-purpose ranges are built in; allocations are added by
// the topology generator (synthetic Internet) or by loading a delegation
// table.
#ifndef BGPCU_REGISTRY_REGISTRY_H
#define BGPCU_REGISTRY_REGISTRY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bgp/asn.h"
#include "bgp/prefix.h"

namespace bgpcu::registry {

/// Allocation status of an ASN.
enum class AsnStatus : std::uint8_t {
  kAllocated,       ///< Delegated to a network operator; may appear in paths.
  kUnallocated,     ///< Not delegated; announcements referencing it are bogus.
  kSpecialPurpose,  ///< Private / reserved / documentation (never public).
};

/// Tracks which ASNs and IPv4/IPv6 prefixes are delegated.
///
/// ASN allocations are kept as merged half-open-free inclusive intervals;
/// IPv4 allocations as merged address intervals; IPv6 allocations as a block
/// list (the synthetic Internet allocates few v6 blocks).
class AllocationRegistry {
 public:
  /// Marks one ASN allocated. Special-purpose ASNs cannot be allocated.
  void allocate_asn(bgp::Asn asn) { allocate_asn_range(asn, asn); }

  /// Marks the inclusive range [lo, hi] allocated.
  void allocate_asn_range(bgp::Asn lo, bgp::Asn hi);

  /// Marks an address block allocated (prefixes contained in it become valid).
  void allocate_prefix(const bgp::Prefix& block);

  [[nodiscard]] AsnStatus asn_status(bgp::Asn asn) const noexcept;

  /// True iff the ASN is allocated and not special-purpose — i.e. it can
  /// legitimately identify a network in an AS path or community upper field.
  [[nodiscard]] bool is_public_allocated(bgp::Asn asn) const noexcept {
    return asn_status(asn) == AsnStatus::kAllocated;
  }

  /// True iff `p` is fully contained in an allocated block.
  [[nodiscard]] bool prefix_allocated(const bgp::Prefix& p) const noexcept;

  [[nodiscard]] std::size_t allocated_asn_count() const noexcept;

 private:
  std::vector<std::pair<bgp::Asn, bgp::Asn>> asn_ranges_;     // sorted, merged, inclusive
  std::vector<std::pair<std::uint64_t, std::uint64_t>> v4_;   // sorted, merged, inclusive
  std::vector<bgp::Prefix> v6_blocks_;
};

/// Loads an allocation table: lines "asn LO HI" or "prefix P/len", '#'
/// comments and blank lines ignored. Throws std::runtime_error on a missing
/// file or malformed line. Shared by the CLI tools.
[[nodiscard]] AllocationRegistry load_allocations(const std::string& path);

/// A registry treating every ASN/prefix as allocated (special-purpose ranges
/// still excluded) — for tool runs without a delegation table, where the
/// allocation filter becomes a no-op.
[[nodiscard]] AllocationRegistry allow_all();

}  // namespace bgpcu::registry

#endif  // BGPCU_REGISTRY_REGISTRY_H
