#include "registry/registry.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace bgpcu::registry {

namespace {

// Inserts [lo, hi] into a sorted merged inclusive interval list.
template <typename T>
void insert_interval(std::vector<std::pair<T, T>>& ranges, T lo, T hi) {
  auto it = std::lower_bound(ranges.begin(), ranges.end(), std::make_pair(lo, hi));
  it = ranges.insert(it, {lo, hi});
  // Merge left.
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo || (lo > 0 && prev->second == lo - 1)) {
      prev->second = std::max(prev->second, hi);
      it = ranges.erase(it);
      it = prev;
    }
  }
  // Merge right.
  while (std::next(it) != ranges.end()) {
    auto next = std::next(it);
    if (next->first <= it->second || (it->second < std::numeric_limits<T>::max() &&
                                      next->first == it->second + 1)) {
      it->second = std::max(it->second, next->second);
      ranges.erase(next);
    } else {
      break;
    }
  }
}

// True iff [lo, hi] is fully contained in one interval of the merged list.
template <typename T>
bool contained(const std::vector<std::pair<T, T>>& ranges, T lo, T hi) {
  auto it = std::upper_bound(ranges.begin(), ranges.end(), std::make_pair(lo, std::numeric_limits<T>::max()));
  if (it == ranges.begin()) return false;
  const auto& range = *std::prev(it);
  return range.first <= lo && hi <= range.second;
}

}  // namespace

void AllocationRegistry::allocate_asn_range(bgp::Asn lo, bgp::Asn hi) {
  if (lo > hi) std::swap(lo, hi);
  insert_interval(asn_ranges_, lo, hi);
}

AsnStatus AllocationRegistry::asn_status(bgp::Asn asn) const noexcept {
  if (bgp::is_special_purpose_asn(asn)) return AsnStatus::kSpecialPurpose;
  return contained(asn_ranges_, asn, asn) ? AsnStatus::kAllocated : AsnStatus::kUnallocated;
}

void AllocationRegistry::allocate_prefix(const bgp::Prefix& block) {
  if (block.afi() == bgp::Afi::kIpv4) {
    const std::uint64_t base = block.ipv4_addr();
    const std::uint64_t span = block.length() >= 32 ? 1 : (1ull << (32 - block.length()));
    insert_interval(v4_, base, base + span - 1);
  } else {
    v6_blocks_.push_back(block);
  }
}

bool AllocationRegistry::prefix_allocated(const bgp::Prefix& p) const noexcept {
  if (p.afi() == bgp::Afi::kIpv4) {
    const std::uint64_t base = p.ipv4_addr();
    const std::uint64_t span = p.length() >= 32 ? 1 : (1ull << (32 - p.length()));
    return contained(v4_, base, base + span - 1);
  }
  return std::any_of(v6_blocks_.begin(), v6_blocks_.end(),
                     [&p](const bgp::Prefix& block) { return block.contains(p); });
}

std::size_t AllocationRegistry::allocated_asn_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [lo, hi] : asn_ranges_) n += static_cast<std::size_t>(hi - lo) + 1;
  return n;
}

AllocationRegistry load_allocations(const std::string& path) {
  AllocationRegistry reg;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open allocations file: " + path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind;
    row >> kind;
    if (kind == "asn") {
      std::uint64_t lo = 0, hi = 0;
      if (!(row >> lo >> hi)) {
        throw std::runtime_error("bad asn line " + std::to_string(lineno) + ": " + line);
      }
      reg.allocate_asn_range(static_cast<bgp::Asn>(lo), static_cast<bgp::Asn>(hi));
    } else if (kind == "prefix") {
      std::string text;
      if (!(row >> text)) {
        throw std::runtime_error("bad prefix line " + std::to_string(lineno) + ": " + line);
      }
      reg.allocate_prefix(bgp::Prefix::parse(text));
    } else {
      throw std::runtime_error("unknown record '" + kind + "' on line " + std::to_string(lineno));
    }
  }
  return reg;
}

AllocationRegistry allow_all() {
  AllocationRegistry reg;
  reg.allocate_asn_range(1, 4294967293u);  // special-purpose ranges still excluded
  reg.allocate_prefix(bgp::Prefix::ipv4(0, 0));
  std::array<std::uint8_t, 16> zero{};
  reg.allocate_prefix(bgp::Prefix::ipv6(zero, 0));
  return reg;
}

}  // namespace bgpcu::registry
