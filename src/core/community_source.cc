#include "core/community_source.h"

#include <algorithm>

namespace bgpcu::core {

const char* to_string(SourceGroup group) noexcept {
  switch (group) {
    case SourceGroup::kPeer:
      return "peer";
    case SourceGroup::kForeign:
      return "foreign";
    case SourceGroup::kStray:
      return "stray";
    case SourceGroup::kPrivate:
      return "private";
  }
  return "?";
}

SourceGroup classify_source(const PathCommTuple& tuple, const bgp::CommunityValue& community,
                            const registry::AllocationRegistry& registry) noexcept {
  const bgp::Asn upper = community.upper;
  if (!tuple.path.empty() && upper == tuple.path.front()) return SourceGroup::kPeer;
  if (std::find(tuple.path.begin(), tuple.path.end(), upper) != tuple.path.end()) {
    return SourceGroup::kForeign;
  }
  if (registry.is_public_allocated(upper)) return SourceGroup::kStray;
  return SourceGroup::kPrivate;
}

SourceGroupCounts& SourceGroupCounts::operator+=(const SourceGroupCounts& other) noexcept {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  return *this;
}

SourceGroupCounts count_sources(const PathCommTuple& tuple,
                                const registry::AllocationRegistry& registry) {
  SourceGroupCounts out;
  for (const auto& c : tuple.comms) {
    ++out.counts[static_cast<std::size_t>(classify_source(tuple, c, registry))];
  }
  return out;
}

}  // namespace bgpcu::core
