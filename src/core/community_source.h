// Community source groups (§3.2): every community in a (path, comm) tuple is
// grouped by where its upper field (Global Administrator) sits relative to
// the AS path. The inference method uses only peer and foreign communities;
// stray and private carry no attributable source.
#ifndef BGPCU_CORE_COMMUNITY_SOURCE_H
#define BGPCU_CORE_COMMUNITY_SOURCE_H

#include <array>
#include <cstdint>
#include <string>

#include "core/types.h"
#include "registry/registry.h"

namespace bgpcu::core {

/// Source group of one community occurrence (§3.2).
enum class SourceGroup : std::uint8_t {
  kPeer = 0,     ///< upper == A1 (the collector peer).
  kForeign = 1,  ///< upper == some Ai, i > 1.
  kStray = 2,    ///< upper is a public allocated ASN not in the path.
  kPrivate = 3,  ///< upper is private / reserved / unallocated.
};

/// Human-readable group name ("peer", "foreign", "stray", "private").
[[nodiscard]] const char* to_string(SourceGroup group) noexcept;

/// Classifies one community occurrence within the context of a tuple.
[[nodiscard]] SourceGroup classify_source(const PathCommTuple& tuple,
                                          const bgp::CommunityValue& community,
                                          const registry::AllocationRegistry& registry) noexcept;

/// Per-group occurrence counts; used for the Fig. 5 analysis and Table 1's
/// "w/o private" / "w/o stray" rows.
struct SourceGroupCounts {
  std::array<std::uint64_t, 4> counts{};

  [[nodiscard]] std::uint64_t of(SourceGroup group) const noexcept {
    return counts[static_cast<std::size_t>(group)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return counts[0] + counts[1] + counts[2] + counts[3];
  }
  SourceGroupCounts& operator+=(const SourceGroupCounts& other) noexcept;
};

/// Counts the source groups of every community occurrence in `tuple`.
[[nodiscard]] SourceGroupCounts count_sources(const PathCommTuple& tuple,
                                              const registry::AllocationRegistry& registry);

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_COMMUNITY_SOURCE_H
