#include "core/row_baseline.h"

#include "core/engine.h"

namespace bgpcu::core {

InferenceResult RowEngine::run(const Dataset& dataset) const {
  CounterMap counters;

  // PHASE 1: count tagging at every path position, unconditionally.
  for (const auto& tuple : dataset) {
    for (const auto asn : tuple.path) {
      auto& k = counters[asn];
      if (bgp::contains_upper(tuple.comms, asn)) {
        ++k.t;
      } else {
        ++k.s;
      }
    }
  }

  // PHASE 2: count forwarding from the origin side (Listing 2 lines 10-14).
  for (const auto& tuple : dataset) {
    const auto& path = tuple.path;
    if (path.size() < 2) continue;
    for (std::size_t x = path.size() - 1; x >= 1; --x) {
      const bgp::Asn downstream = path[x];  // A_{x+1} in 1-based notation
      if (bgp::contains_upper(tuple.comms, downstream)) {
        for (std::size_t j = 0; j < x; ++j) ++counters[path[j]].f;
      } else {
        ++counters[path[x - 1]].c;
      }
    }
  }

  return InferenceResult(std::move(counters), thresholds_, /*columns_swept=*/0);
}

}  // namespace bgpcu::core
