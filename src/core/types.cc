#include "core/types.h"

#include <algorithm>

namespace bgpcu::core {

std::string PathCommTuple::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(path[i]);
  }
  out += " |";
  for (const auto& c : comms) {
    out += ' ';
    out += c.to_string();
  }
  return out;
}

std::size_t deduplicate(Dataset& tuples) {
  for (auto& t : tuples) bgp::normalize(t.comms);
  const std::size_t before = tuples.size();
  // Single-pass lexicographic comparison: the naive (a.path != b.path)
  // pre-check walked both vectors twice per comparison in the sort's inner
  // loop, which dominated dedup time on update-heavy inputs.
  std::sort(tuples.begin(), tuples.end(), [](const PathCommTuple& a, const PathCommTuple& b) {
    const auto path_cmp = std::lexicographical_compare_three_way(
        a.path.begin(), a.path.end(), b.path.begin(), b.path.end());
    if (path_cmp != 0) return path_cmp < 0;
    return a.comms < b.comms;
  });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return before - tuples.size();
}

std::vector<bgp::Asn> distinct_asns(const Dataset& tuples) {
  std::size_t total = 0;
  for (const auto& t : tuples) total += t.path.size();
  std::vector<bgp::Asn> asns;
  asns.reserve(total);
  for (const auto& t : tuples) {
    asns.insert(asns.end(), t.path.begin(), t.path.end());
  }
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
  return asns;
}

}  // namespace bgpcu::core
