// Tagger vocabulary inference — the paper's stated future work (§8): "we
// wish to identify not only whether an AS is a tagger, but also which
// communities it adds. This ability will be especially useful to
// differentiate signaling versus informational communities."
//
// For every AS the engine classified as tagger, this module attributes the
// community values carrying its ASN in the upper field and grades each value
// by *coverage*: the share of the AS's visible (Cond1-clean) path
// appearances on which the value occurs.
//
//   * informational values ride (nearly) every announcement the tagger
//     forwards — geo/ingress tags: high coverage;
//   * signaling/action values appear only on the few routes whose owners
//     requested an action — low coverage;
//   * values in between stay unclassified.
#ifndef BGPCU_CORE_VOCABULARY_H
#define BGPCU_CORE_VOCABULARY_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/types.h"

namespace bgpcu::core {

/// Usage kind of one community value within a tagger's vocabulary.
enum class ValueKind : std::uint8_t { kInformational, kSignaling, kUnclassified };

[[nodiscard]] const char* to_string(ValueKind kind) noexcept;

/// One attributed community value.
struct VocabularyEntry {
  bgp::CommunityValue value;
  std::uint64_t occurrences = 0;   ///< Tuples carrying the value.
  std::uint64_t appearances = 0;   ///< Visible tuples containing the AS.
  double coverage = 0.0;           ///< occurrences / appearances.
  ValueKind kind = ValueKind::kUnclassified;
};

/// Classification thresholds on coverage.
struct VocabularyConfig {
  double informational_min_coverage = 0.50;
  double signaling_max_coverage = 0.05;
  /// Minimum visible appearances before grading is attempted.
  std::uint64_t min_appearances = 5;
};

/// Vocabulary per tagger ASN.
using VocabularyMap = std::unordered_map<bgp::Asn, std::vector<VocabularyEntry>>;

/// Attributes community values to the taggers in `result`. Only tuples where
/// the tagger's position satisfies Cond1 under `result`'s classification are
/// counted (mirroring the engine's own visibility rules), so values that
/// merely *survived* through the AS are not misattributed to it.
[[nodiscard]] VocabularyMap infer_vocabulary(const Dataset& dataset,
                                             const InferenceResult& result,
                                             const VocabularyConfig& config = {});

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_VOCABULARY_H
