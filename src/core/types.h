// The inference algorithm's input model: unique (AS path, community set)
// tuples as extracted from collector RIBs and updates (§4), where the path
// is A1..An (A1 = collector peer, An = origin) and the community set is
// output(A1), the peer's community output observed at the collector.
#ifndef BGPCU_CORE_TYPES_H
#define BGPCU_CORE_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/asn.h"
#include "bgp/community.h"

namespace bgpcu::core {

/// One observation unit: a sanitized AS path plus the community set seen with
/// it. The inference method operates on *unique* tuples (§4), so equality
/// and hashing are defined over normalized members.
struct PathCommTuple {
  std::vector<bgp::Asn> path;  ///< A1 (collector peer) .. An (origin).
  bgp::CommunitySet comms;     ///< output(A1); normalized (sorted, unique).

  [[nodiscard]] bool empty() const noexcept { return path.empty(); }
  [[nodiscard]] bgp::Asn peer() const { return path.front(); }
  [[nodiscard]] bgp::Asn origin() const { return path.back(); }

  /// "A1 A2 ... An | c1 c2 ..." debug form.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PathCommTuple&, const PathCommTuple&) = default;
};

/// A deduplicated tuple collection, the unit of input to the engines.
using Dataset = std::vector<PathCommTuple>;

/// Sorts + deduplicates `tuples` in place (normalizing each community set
/// first) and returns the number of duplicates removed.
std::size_t deduplicate(Dataset& tuples);

/// All distinct ASNs appearing in any path of `tuples`, sorted.
[[nodiscard]] std::vector<bgp::Asn> distinct_asns(const Dataset& tuples);

}  // namespace bgpcu::core

template <>
struct std::hash<bgpcu::core::PathCommTuple> {
  std::size_t operator()(const bgpcu::core::PathCommTuple& t) const noexcept {
    std::size_t h = 14695981039346656037ull;
    for (const auto asn : t.path) h = (h ^ asn) * 1099511628211ull;
    for (const auto& c : t.comms) {
      h = (h ^ std::hash<bgpcu::bgp::CommunityValue>{}(c)) * 1099511628211ull;
    }
    return h;
  }
};

#endif  // BGPCU_CORE_TYPES_H
