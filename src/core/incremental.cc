#include "core/incremental.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bgpcu::core {

namespace {

constexpr std::uint32_t kUnmapped = std::numeric_limits<std::uint32_t>::max();

// Image framing. Fixed-width little-endian fields: the image is bulk array
// data, not a wire frame, so varints would only slow the mmap'd load down.
constexpr std::uint8_t kImageMagic[4] = {0x89, 'B', 'C', 'I'};
constexpr std::uint8_t kImageVersion = 1;

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

/// Bounds-checked little-endian reader over an image span. `ok` latches
/// false on the first out-of-bounds read; all reads after that return 0.
struct ImageCursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] bool has(std::size_t n) {
    if (!ok || data.size() - pos < n) ok = false;
    return ok;
  }
  std::uint32_t u32() {
    if (!has(4)) return 0;
    const std::uint8_t* b = data.data() + pos;
    const std::uint32_t value = static_cast<std::uint32_t>(b[0]) |
                                (static_cast<std::uint32_t>(b[1]) << 8) |
                                (static_cast<std::uint32_t>(b[2]) << 16) |
                                (static_cast<std::uint32_t>(b[3]) << 24);
    pos += 4;
    return value;
  }
  std::uint64_t u64() {
    if (!has(8)) return 0;
    const std::uint8_t* b = data.data() + pos;
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) value = (value << 8) | b[i];
    pos += 8;
    return value;
  }
};

}  // namespace

IncrementalIndex::IncrementalIndex(IncrementalIndexConfig config) : config_(config) {
  reset();
}

void IncrementalIndex::reset() {
  data_ = IndexedDataset{};
  // One fixed slot per possible path length: group index never moves, so a
  // RowRef stays valid for the life of its row (until compaction remaps it).
  data_.groups_.resize(kMaxPathLength);
  for (std::size_t len = 1; len <= kMaxPathLength; ++len) {
    data_.groups_[len - 1].len = static_cast<std::uint32_t>(len);
  }
  id_of_.clear();
  id_refs_.clear();
  dead_ids_ = 0;
  row_of_.clear();
  row_keys_.assign(kMaxPathLength, {});
  dead_rows_.assign(kMaxPathLength, 0);
}

std::size_t IncrementalIndex::live_rows(std::size_t g) const noexcept {
  return data_.groups_[g].count() - dead_rows_[g];
}

void IncrementalIndex::refresh_max_len() noexcept {
  std::size_t max_len = 0;
  for (std::size_t g = kMaxPathLength; g-- > 0;) {
    if (live_rows(g) != 0) {
      max_len = g + 1;
      break;
    }
  }
  data_.max_len_ = max_len;
}

void IncrementalIndex::add(std::uint64_t key, const std::vector<bgp::Asn>& path,
                           std::uint32_t upper_mask) {
  if (path.empty() || path.size() > kMaxPathLength) return;
  const std::size_t g = path.size() - 1;
  auto& group = data_.groups_[g];
  const auto row = static_cast<std::uint32_t>(group.count());
  if (!row_of_.emplace(key, RowRef{group.len, row}).second) {
    throw std::invalid_argument("IncrementalIndex: add reuses a live key");
  }
  for (const auto asn : path) {
    const auto [it, inserted] =
        id_of_.emplace(asn, static_cast<std::uint32_t>(data_.asns_.size()));
    if (inserted) {
      data_.asns_.push_back(asn);
      id_refs_.push_back(0);
    }
    const std::uint32_t id = it->second;
    if (!inserted && id_refs_[id] == 0) --dead_ids_;  // vanished AS reappears
    ++id_refs_[id];
    group.ids.push_back(id);
  }
  group.masks.push_back(upper_mask);
  row_keys_[g].push_back(key);
  if (!group.alive.empty()) group.alive.push_back(1);
  data_.max_len_ = std::max(data_.max_len_, path.size());
  ++data_.tuple_count_;
  ++stats_.adds_applied;
}

void IncrementalIndex::remove(std::uint64_t key) {
  const auto it = row_of_.find(key);
  if (it == row_of_.end()) {
    throw std::invalid_argument("IncrementalIndex: remove of unknown key");
  }
  const auto [len, row] = it->second;
  row_of_.erase(it);
  const std::size_t g = len - 1;
  auto& group = data_.groups_[g];
  if (group.alive.empty()) group.alive.assign(group.count(), 1);
  group.alive[row] = 0;
  ++dead_rows_[g];
  const std::uint32_t* ids = group.ids.data() + static_cast<std::size_t>(row) * len;
  for (std::size_t i = 0; i < len; ++i) {
    if (--id_refs_[ids[i]] == 0) ++dead_ids_;
  }
  --data_.tuple_count_;
  ++stats_.removes_applied;
  if (len == data_.max_len_ && live_rows(g) == 0) refresh_max_len();
  if (dead_rows_[g] >= config_.compact_min_dead_rows &&
      dead_rows_[g] * 2 >= group.count()) {
    compact_group(g);
  }
}

void IncrementalIndex::compact_group(std::size_t g) {
  auto& group = data_.groups_[g];
  auto& keys = row_keys_[g];
  const std::size_t len = group.len;
  std::size_t write = 0;
  for (std::size_t row = 0; row < group.count(); ++row) {
    if (!group.alive[row]) continue;
    if (write != row) {
      std::copy_n(group.ids.begin() + static_cast<std::ptrdiff_t>(row * len), len,
                  group.ids.begin() + static_cast<std::ptrdiff_t>(write * len));
      group.masks[write] = group.masks[row];
      keys[write] = keys[row];
      row_of_[keys[write]].row = static_cast<std::uint32_t>(write);
    }
    ++write;
  }
  group.ids.resize(write * len);
  group.masks.resize(write);
  keys.resize(write);
  group.alive.clear();
  dead_rows_[g] = 0;
  ++stats_.group_compactions;
}

void IncrementalIndex::rebuild() {
  // Reassign dense ids over the live rows only (first-appearance order, as a
  // from-scratch build would), compacting every group in the same pass.
  std::vector<std::uint32_t> remap(data_.asns_.size(), kUnmapped);
  std::vector<bgp::Asn> new_asns;
  std::vector<std::uint32_t> new_refs;
  new_asns.reserve(data_.asns_.size() - dead_ids_);
  new_refs.reserve(data_.asns_.size() - dead_ids_);
  for (std::size_t g = 0; g < kMaxPathLength; ++g) {
    auto& group = data_.groups_[g];
    auto& keys = row_keys_[g];
    const std::size_t len = group.len;
    std::size_t write = 0;
    for (std::size_t row = 0; row < group.count(); ++row) {
      if (!group.alive.empty() && !group.alive[row]) continue;
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint32_t old_id = group.ids[row * len + i];
        std::uint32_t& mapped = remap[old_id];
        if (mapped == kUnmapped) {
          mapped = static_cast<std::uint32_t>(new_asns.size());
          new_asns.push_back(data_.asns_[old_id]);
          new_refs.push_back(0);
        }
        ++new_refs[mapped];
        group.ids[write * len + i] = mapped;
      }
      group.masks[write] = group.masks[row];
      keys[write] = keys[row];
      row_of_[keys[write]].row = static_cast<std::uint32_t>(write);
      ++write;
    }
    group.ids.resize(write * len);
    group.masks.resize(write);
    keys.resize(write);
    group.alive.clear();
    dead_rows_[g] = 0;
  }
  data_.asns_ = std::move(new_asns);
  id_refs_ = std::move(new_refs);
  id_of_.clear();
  id_of_.reserve(data_.asns_.size());
  for (std::size_t id = 0; id < data_.asns_.size(); ++id) {
    id_of_.emplace(data_.asns_[id], static_cast<std::uint32_t>(id));
  }
  dead_ids_ = 0;
  ++stats_.full_rebuilds;
}

void IncrementalIndex::apply(std::vector<IndexDelta> deltas) {
  for (auto& delta : deltas) {
    if (delta.kind == IndexDelta::Kind::kAdd) {
      add(delta.key, delta.path, delta.upper_mask);
    } else {
      remove(delta.key);
    }
  }
  if (dead_ids_ >= config_.rebuild_min_dead_ids && dead_ids_ * 2 >= id_refs_.size()) {
    rebuild();
  }
}

void IncrementalIndex::serialize_image(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), std::begin(kImageMagic), std::end(kImageMagic));
  out.push_back(kImageVersion);
  put_u32le(out, static_cast<std::uint32_t>(data_.asns_.size()));
  for (const auto asn : data_.asns_) put_u32le(out, asn);
  for (std::size_t g = 0; g < kMaxPathLength; ++g) {
    const auto& group = data_.groups_[g];
    const auto& keys = row_keys_[g];
    const std::size_t len = group.len;
    put_u32le(out, static_cast<std::uint32_t>(live_rows(g)));
    for (std::size_t row = 0; row < group.count(); ++row) {
      if (!group.alive.empty() && !group.alive[row]) continue;
      for (std::size_t i = 0; i < len; ++i) put_u32le(out, group.ids[row * len + i]);
      put_u32le(out, group.masks[row]);
      put_u64le(out, keys[row]);
    }
  }
}

bool IncrementalIndex::load_image(std::span<const std::uint8_t> image) {
  reset();
  ImageCursor cursor{image};
  if (!cursor.has(5)) return false;
  if (!std::equal(std::begin(kImageMagic), std::end(kImageMagic), image.begin())) {
    return false;
  }
  cursor.pos = 4;
  if (image[cursor.pos++] != kImageVersion) return false;

  const std::uint32_t asn_count = cursor.u32();
  // Every ASN costs 4 image bytes; reject counts the remaining bytes cannot
  // hold before reserving anything.
  if (!cursor.ok || image.size() - cursor.pos < static_cast<std::size_t>(asn_count) * 4) {
    return false;
  }
  data_.asns_.reserve(asn_count);
  id_of_.reserve(asn_count);
  for (std::uint32_t id = 0; id < asn_count; ++id) {
    const auto asn = cursor.u32();
    if (!id_of_.emplace(asn, id).second) {
      reset();
      return false;  // duplicate ASN: the dense map would be ambiguous
    }
    data_.asns_.push_back(asn);
  }
  id_refs_.assign(asn_count, 0);

  for (std::size_t g = 0; g < kMaxPathLength; ++g) {
    auto& group = data_.groups_[g];
    auto& keys = row_keys_[g];
    const std::size_t len = group.len;
    const std::uint32_t rows = cursor.u32();
    const std::size_t row_bytes = len * 4 + 4 + 8;
    if (!cursor.ok || (image.size() - cursor.pos) / row_bytes < rows) {
      reset();
      return false;
    }
    group.ids.reserve(static_cast<std::size_t>(rows) * len);
    group.masks.reserve(rows);
    keys.reserve(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
      for (std::size_t i = 0; i < len; ++i) {
        const auto id = cursor.u32();
        if (id >= asn_count) {
          reset();
          return false;
        }
        ++id_refs_[id];
        group.ids.push_back(id);
      }
      group.masks.push_back(cursor.u32());
      const auto key = cursor.u64();
      if (!row_of_.emplace(key, RowRef{group.len, row}).second) {
        reset();
        return false;  // duplicate tuple key
      }
      keys.push_back(key);
    }
    data_.tuple_count_ += rows;
    if (rows != 0) data_.max_len_ = len;
  }
  if (!cursor.ok || cursor.pos != image.size()) {
    reset();
    return false;
  }
  for (const auto refs : id_refs_) {
    if (refs == 0) ++dead_ids_;
  }
  return true;
}

}  // namespace bgpcu::core
