#include "core/incremental.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bgpcu::core {

namespace {

constexpr std::uint32_t kUnmapped = std::numeric_limits<std::uint32_t>::max();

}  // namespace

IncrementalIndex::IncrementalIndex(IncrementalIndexConfig config) : config_(config) {
  reset();
}

void IncrementalIndex::reset() {
  data_ = IndexedDataset{};
  // One fixed slot per possible path length: group index never moves, so a
  // RowRef stays valid for the life of its row (until compaction remaps it).
  data_.groups_.resize(kMaxPathLength);
  for (std::size_t len = 1; len <= kMaxPathLength; ++len) {
    data_.groups_[len - 1].len = static_cast<std::uint32_t>(len);
  }
  id_of_.clear();
  id_refs_.clear();
  dead_ids_ = 0;
  row_of_.clear();
  row_keys_.assign(kMaxPathLength, {});
  dead_rows_.assign(kMaxPathLength, 0);
}

std::size_t IncrementalIndex::live_rows(std::size_t g) const noexcept {
  return data_.groups_[g].count() - dead_rows_[g];
}

void IncrementalIndex::refresh_max_len() noexcept {
  std::size_t max_len = 0;
  for (std::size_t g = kMaxPathLength; g-- > 0;) {
    if (live_rows(g) != 0) {
      max_len = g + 1;
      break;
    }
  }
  data_.max_len_ = max_len;
}

void IncrementalIndex::add(std::uint64_t key, const std::vector<bgp::Asn>& path,
                           std::uint32_t upper_mask) {
  if (path.empty() || path.size() > kMaxPathLength) return;
  const std::size_t g = path.size() - 1;
  auto& group = data_.groups_[g];
  const auto row = static_cast<std::uint32_t>(group.count());
  if (!row_of_.emplace(key, RowRef{group.len, row}).second) {
    throw std::invalid_argument("IncrementalIndex: add reuses a live key");
  }
  for (const auto asn : path) {
    const auto [it, inserted] =
        id_of_.emplace(asn, static_cast<std::uint32_t>(data_.asns_.size()));
    if (inserted) {
      data_.asns_.push_back(asn);
      id_refs_.push_back(0);
    }
    const std::uint32_t id = it->second;
    if (!inserted && id_refs_[id] == 0) --dead_ids_;  // vanished AS reappears
    ++id_refs_[id];
    group.ids.push_back(id);
  }
  group.masks.push_back(upper_mask);
  row_keys_[g].push_back(key);
  if (!group.alive.empty()) group.alive.push_back(1);
  data_.max_len_ = std::max(data_.max_len_, path.size());
  ++data_.tuple_count_;
  ++stats_.adds_applied;
}

void IncrementalIndex::remove(std::uint64_t key) {
  const auto it = row_of_.find(key);
  if (it == row_of_.end()) {
    throw std::invalid_argument("IncrementalIndex: remove of unknown key");
  }
  const auto [len, row] = it->second;
  row_of_.erase(it);
  const std::size_t g = len - 1;
  auto& group = data_.groups_[g];
  if (group.alive.empty()) group.alive.assign(group.count(), 1);
  group.alive[row] = 0;
  ++dead_rows_[g];
  const std::uint32_t* ids = group.ids.data() + static_cast<std::size_t>(row) * len;
  for (std::size_t i = 0; i < len; ++i) {
    if (--id_refs_[ids[i]] == 0) ++dead_ids_;
  }
  --data_.tuple_count_;
  ++stats_.removes_applied;
  if (len == data_.max_len_ && live_rows(g) == 0) refresh_max_len();
  if (dead_rows_[g] >= config_.compact_min_dead_rows &&
      dead_rows_[g] * 2 >= group.count()) {
    compact_group(g);
  }
}

void IncrementalIndex::compact_group(std::size_t g) {
  auto& group = data_.groups_[g];
  auto& keys = row_keys_[g];
  const std::size_t len = group.len;
  std::size_t write = 0;
  for (std::size_t row = 0; row < group.count(); ++row) {
    if (!group.alive[row]) continue;
    if (write != row) {
      std::copy_n(group.ids.begin() + static_cast<std::ptrdiff_t>(row * len), len,
                  group.ids.begin() + static_cast<std::ptrdiff_t>(write * len));
      group.masks[write] = group.masks[row];
      keys[write] = keys[row];
      row_of_[keys[write]].row = static_cast<std::uint32_t>(write);
    }
    ++write;
  }
  group.ids.resize(write * len);
  group.masks.resize(write);
  keys.resize(write);
  group.alive.clear();
  dead_rows_[g] = 0;
  ++stats_.group_compactions;
}

void IncrementalIndex::rebuild() {
  // Reassign dense ids over the live rows only (first-appearance order, as a
  // from-scratch build would), compacting every group in the same pass.
  std::vector<std::uint32_t> remap(data_.asns_.size(), kUnmapped);
  std::vector<bgp::Asn> new_asns;
  std::vector<std::uint32_t> new_refs;
  new_asns.reserve(data_.asns_.size() - dead_ids_);
  new_refs.reserve(data_.asns_.size() - dead_ids_);
  for (std::size_t g = 0; g < kMaxPathLength; ++g) {
    auto& group = data_.groups_[g];
    auto& keys = row_keys_[g];
    const std::size_t len = group.len;
    std::size_t write = 0;
    for (std::size_t row = 0; row < group.count(); ++row) {
      if (!group.alive.empty() && !group.alive[row]) continue;
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint32_t old_id = group.ids[row * len + i];
        std::uint32_t& mapped = remap[old_id];
        if (mapped == kUnmapped) {
          mapped = static_cast<std::uint32_t>(new_asns.size());
          new_asns.push_back(data_.asns_[old_id]);
          new_refs.push_back(0);
        }
        ++new_refs[mapped];
        group.ids[write * len + i] = mapped;
      }
      group.masks[write] = group.masks[row];
      keys[write] = keys[row];
      row_of_[keys[write]].row = static_cast<std::uint32_t>(write);
      ++write;
    }
    group.ids.resize(write * len);
    group.masks.resize(write);
    keys.resize(write);
    group.alive.clear();
    dead_rows_[g] = 0;
  }
  data_.asns_ = std::move(new_asns);
  id_refs_ = std::move(new_refs);
  id_of_.clear();
  id_of_.reserve(data_.asns_.size());
  for (std::size_t id = 0; id < data_.asns_.size(); ++id) {
    id_of_.emplace(data_.asns_[id], static_cast<std::uint32_t>(id));
  }
  dead_ids_ = 0;
  ++stats_.full_rebuilds;
}

void IncrementalIndex::apply(std::vector<IndexDelta> deltas) {
  for (auto& delta : deltas) {
    if (delta.kind == IndexDelta::Kind::kAdd) {
      add(delta.key, delta.path, delta.upper_mask);
    } else {
      remove(delta.key);
    }
  }
  if (dead_ids_ >= config_.rebuild_min_dead_ids && dead_ids_ * 2 >= id_refs_.size()) {
    rebuild();
  }
}

}  // namespace bgpcu::core
