#include "core/engine.h"

#include <algorithm>
#include <unordered_map>

#include "util/task_pool.h"

namespace bgpcu::core {

namespace {

/// One phase's counting output for one lane: two evidence counters per dense
/// id (t/s in phase 1, f/c in phase 2) plus the lane's increment count for
/// the early-stop rule. Lanes merge by addition after the phase barrier, so
/// totals are independent of lane count and scheduling.
struct PhaseCounters {
  std::vector<std::uint64_t> hit;
  std::vector<std::uint64_t> miss;
  std::uint64_t increments = 0;

  void reset(std::size_t n) {
    hit.assign(n, 0);
    miss.assign(n, 0);
    increments = 0;
  }
};

/// Cond1 for target position x (1-based): all ids strictly before x classify
/// forward. `ids` points at one tuple's path row.
bool cond1(const std::uint32_t* ids, std::size_t x, const std::uint8_t* forward_flag) {
  for (std::size_t i = 0; i + 1 < x; ++i) {
    if (!forward_flag[ids[i]]) return false;
  }
  return true;
}

/// PHASE 1 over tuples [begin, end) of one length group at column x.
void count_tagging(const IndexedDataset::Group& group, std::size_t begin, std::size_t end,
                   std::size_t x, const std::uint8_t* forward_flag, PhaseCounters& out) {
  const std::size_t len = group.len;
  const std::uint8_t* alive = group.alive.empty() ? nullptr : group.alive.data();
  const std::uint32_t* ids = group.ids.data() + begin * len;
  for (std::size_t t = begin; t < end; ++t, ids += len) {
    if (alive != nullptr && !alive[t]) continue;  // tombstoned row
    if (!cond1(ids, x, forward_flag)) continue;
    const std::uint32_t target = ids[x - 1];
    if ((group.masks[t] >> (x - 1)) & 1u) {
      ++out.hit[target];
    } else {
      ++out.miss[target];
    }
    ++out.increments;
  }
}

/// PHASE 2 over tuples [begin, end) of one length group at column x
/// (Cond1 + Cond2: nearest downstream tagger with only forward ASes
/// strictly in between).
void count_forwarding(const IndexedDataset::Group& group, std::size_t begin, std::size_t end,
                      std::size_t x, const std::uint8_t* forward_flag,
                      const std::uint8_t* tagger_flag, PhaseCounters& out) {
  const std::size_t len = group.len;
  const std::uint8_t* alive = group.alive.empty() ? nullptr : group.alive.data();
  const std::uint32_t* ids = group.ids.data() + begin * len;
  for (std::size_t t = begin; t < end; ++t, ids += len) {
    if (alive != nullptr && !alive[t]) continue;  // tombstoned row
    if (!cond1(ids, x, forward_flag)) continue;
    std::size_t t_pos = 0;  // 1-based; 0 = not found
    for (std::size_t j = x; j < len; ++j) {
      const std::uint32_t id = ids[j];
      if (tagger_flag[id]) {
        t_pos = j + 1;
        break;
      }
      if (!forward_flag[id]) break;
    }
    if (t_pos == 0) continue;
    const std::uint32_t target = ids[x - 1];
    if ((group.masks[t] >> (t_pos - 1)) & 1u) {
      ++out.hit[target];
    } else {
      ++out.miss[target];
    }
    ++out.increments;
  }
}

/// Invokes fn(group, begin, end) for lane `lane`'s contiguous share of the
/// tuples eligible at column x (those in groups of length >= x). The
/// partition depends only on (eligible count, lanes), never on scheduling.
template <typename Fn>
void for_lane_slices(const std::vector<IndexedDataset::Group>& groups, std::size_t x,
                     std::size_t lane, std::size_t lanes, std::size_t eligible, Fn&& fn) {
  const std::size_t lo = lane * eligible / lanes;
  const std::size_t hi = (lane + 1) * eligible / lanes;
  std::size_t base = 0;
  for (const auto& group : groups) {
    if (group.len < x) continue;
    const std::size_t group_begin = base;
    const std::size_t group_end = base + group.count();
    base = group_end;
    if (group_end <= lo) continue;
    if (group_begin >= hi) break;
    fn(group, std::max(lo, group_begin) - group_begin, std::min(hi, group_end) - group_begin);
  }
}

}  // namespace

std::optional<TupleView> TupleView::prepare(const PathCommTuple& tuple) {
  if (tuple.path.empty() || tuple.path.size() > kMaxPathLength) return std::nullopt;
  TupleView view;
  view.path = &tuple.path;
  for (std::size_t i = 0; i < tuple.path.size(); ++i) {
    if (bgp::contains_upper(tuple.comms, tuple.path[i])) {
      view.upper_mask |= (1u << i);
    }
  }
  return view;
}

IndexedDataset::IndexedDataset(std::span<const TupleView> views) {
  std::unordered_map<bgp::Asn, std::uint32_t> ids;
  std::vector<Group> by_len(kMaxPathLength + 1);
  for (const auto& view : views) {
    const auto& path = *view.path;
    // TupleView::prepare never yields these, but the engines' contract is
    // that empty/overlong paths are ignored, not indexed out of bounds.
    if (path.empty() || path.size() > kMaxPathLength) continue;
    auto& group = by_len[path.size()];
    for (const auto asn : path) {
      const auto [it, inserted] =
          ids.emplace(asn, static_cast<std::uint32_t>(asns_.size()));
      if (inserted) asns_.push_back(asn);
      group.ids.push_back(it->second);
    }
    group.masks.push_back(view.upper_mask);
    max_len_ = std::max(max_len_, path.size());
    ++tuple_count_;
  }
  for (std::size_t len = 1; len <= kMaxPathLength; ++len) {
    if (by_len[len].masks.empty()) continue;
    by_len[len].len = static_cast<std::uint32_t>(len);
    groups_.push_back(std::move(by_len[len]));
  }
}

UsageCounters InferenceResult::counters(bgp::Asn asn) const {
  const auto it = counters_.find(asn);
  return it == counters_.end() ? UsageCounters{} : it->second;
}

UsageClass InferenceResult::usage(bgp::Asn asn) const { return usage(asn, thresholds_); }

UsageClass InferenceResult::usage(bgp::Asn asn, const Thresholds& th) const {
  return classify(counters(asn), th);
}

TaggingClass InferenceResult::tagging(bgp::Asn asn) const {
  return classify_tagging(counters(asn), thresholds_);
}

ForwardingClass InferenceResult::forwarding(bgp::Asn asn) const {
  return classify_forwarding(counters(asn), thresholds_);
}

InferenceResult sweep_columns(const IndexedDataset& data, const EngineConfig& config) {
  const std::size_t n = data.asn_count();
  std::vector<UsageCounters> counters(n);

  // Per-phase snapshots of the class predicates (deterministic counting).
  std::vector<std::uint8_t> forward_flag(n, 0);
  std::vector<std::uint8_t> tagger_flag(n, 0);
  const auto snapshot = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      forward_flag[i] = is_forward(counters[i], config.thresholds) ? 1 : 0;
      tagger_flag[i] = is_tagger(counters[i], config.thresholds) ? 1 : 0;
    }
  };

  // Lane resolution: explicit thread counts are honored even beyond the
  // machine's parallelism (bit-identical output makes that safe); auto mode
  // keeps small inputs serial, where the per-phase merge would dominate.
  constexpr std::size_t kAutoParallelCutoff = 8192;
  std::size_t lanes =
      config.threads != 0 ? config.threads : util::TaskPool::shared().parallelism();
  if (config.threads == 0 && data.tuple_count() < kAutoParallelCutoff) lanes = 1;
  lanes = std::max<std::size_t>(1, std::min(lanes, std::max<std::size_t>(1, data.tuple_count())));

  std::vector<PhaseCounters> lane_out(lanes);

  std::size_t columns = data.max_len();
  if (config.max_columns != 0) columns = std::min(columns, config.max_columns);

  // Runs one phase's counting across all lanes and merges the partials into
  // `counters` in lane order; returns the phase's total increments.
  const auto run_phase = [&](std::size_t x, bool phase2) -> std::uint64_t {
    std::size_t eligible = 0;
    for (const auto& group : data.groups()) {
      if (group.len >= x) eligible += group.count();
    }
    const auto lane_body = [&](std::size_t lane) {
      auto& out = lane_out[lane];
      out.reset(n);
      for_lane_slices(data.groups(), x, lane, lanes, eligible,
                      [&](const IndexedDataset::Group& group, std::size_t begin,
                          std::size_t end) {
                        if (phase2) {
                          count_forwarding(group, begin, end, x, forward_flag.data(),
                                           tagger_flag.data(), out);
                        } else {
                          count_tagging(group, begin, end, x, forward_flag.data(), out);
                        }
                      });
    };
    if (lanes == 1) {
      lane_body(0);
    } else {
      util::TaskPool::shared().parallel_for(lanes, lane_body);
    }
    std::uint64_t increments = 0;
    for (const auto& out : lane_out) {
      if (out.increments == 0) continue;  // all-zero partials add nothing
      increments += out.increments;
      for (std::size_t i = 0; i < n; ++i) {
        if (phase2) {
          counters[i].f += out.hit[i];
          counters[i].c += out.miss[i];
        } else {
          counters[i].t += out.hit[i];
          counters[i].s += out.miss[i];
        }
      }
    }
    return increments;
  };

  std::size_t swept = 0;
  for (std::size_t x = 1; x <= columns; ++x) {
    ++swept;
    // PHASE 1: count tagging at column x.
    snapshot();
    std::uint64_t increments = run_phase(x, /*phase2=*/false);
    // PHASE 2: count forwarding at column x. The snapshot now includes the
    // tagging evidence gathered in phase 1.
    snapshot();
    increments += run_phase(x, /*phase2=*/true);
    if (config.early_stop && increments == 0) break;
  }

  CounterMap out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& k = counters[i];
    if (k.t | k.s | k.f | k.c) out.emplace(data.asns()[i], k);
  }
  return InferenceResult(std::move(out), config.thresholds, swept);
}

InferenceResult sweep_columns(std::span<const TupleView> views, const EngineConfig& config) {
  return sweep_columns(IndexedDataset(views), config);
}

InferenceResult ColumnEngine::run(const Dataset& dataset) const {
  std::vector<TupleView> views;
  views.reserve(dataset.size());
  for (const auto& tuple : dataset) {
    if (auto view = TupleView::prepare(tuple)) views.push_back(*view);
  }
  return sweep_columns(views, config_);
}

}  // namespace bgpcu::core
