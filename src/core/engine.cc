#include "core/engine.h"

#include <algorithm>

namespace bgpcu::core {

namespace {

/// Dense ASN -> small-integer index map so per-AS state lives in flat arrays.
class AsnIndex {
 public:
  explicit AsnIndex(std::span<const TupleView> views) {
    for (const auto& view : views) {
      for (const auto asn : *view.path) {
        if (map_.emplace(asn, asns_.size()).second) asns_.push_back(asn);
      }
    }
  }

  [[nodiscard]] std::size_t of(bgp::Asn asn) const { return map_.at(asn); }
  [[nodiscard]] std::size_t size() const noexcept { return asns_.size(); }
  [[nodiscard]] const std::vector<bgp::Asn>& asns() const noexcept { return asns_; }

 private:
  std::unordered_map<bgp::Asn, std::size_t> map_;
  std::vector<bgp::Asn> asns_;
};

}  // namespace

std::optional<TupleView> TupleView::prepare(const PathCommTuple& tuple) {
  if (tuple.path.empty() || tuple.path.size() > kMaxPathLength) return std::nullopt;
  TupleView view;
  view.path = &tuple.path;
  for (std::size_t i = 0; i < tuple.path.size(); ++i) {
    if (bgp::contains_upper(tuple.comms, tuple.path[i])) {
      view.upper_mask |= (1u << i);
    }
  }
  return view;
}

UsageCounters InferenceResult::counters(bgp::Asn asn) const {
  const auto it = counters_.find(asn);
  return it == counters_.end() ? UsageCounters{} : it->second;
}

UsageClass InferenceResult::usage(bgp::Asn asn) const { return usage(asn, thresholds_); }

UsageClass InferenceResult::usage(bgp::Asn asn, const Thresholds& th) const {
  return classify(counters(asn), th);
}

TaggingClass InferenceResult::tagging(bgp::Asn asn) const {
  return classify_tagging(counters(asn), thresholds_);
}

ForwardingClass InferenceResult::forwarding(bgp::Asn asn) const {
  return classify_forwarding(counters(asn), thresholds_);
}

InferenceResult sweep_columns(std::span<const TupleView> views, const EngineConfig& config) {
  const AsnIndex index(views);

  std::size_t max_len = 0;
  for (const auto& view : views) max_len = std::max(max_len, view.path->size());

  std::vector<UsageCounters> counters(index.size());

  // Per-phase snapshots of the class predicates (deterministic counting).
  std::vector<std::uint8_t> forward_flag(index.size(), 0);
  std::vector<std::uint8_t> tagger_flag(index.size(), 0);
  const auto snapshot = [&] {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      forward_flag[i] = is_forward(counters[i], config.thresholds) ? 1 : 0;
      tagger_flag[i] = is_tagger(counters[i], config.thresholds) ? 1 : 0;
    }
  };

  // Cond1 for target position x (1-based): all A_i, i < x classify forward.
  const auto cond1 = [&](const std::vector<bgp::Asn>& path, std::size_t x) {
    for (std::size_t i = 0; i + 1 < x; ++i) {
      if (!forward_flag[index.of(path[i])]) return false;
    }
    return true;
  };

  std::size_t columns = max_len;
  if (config.max_columns != 0) columns = std::min(columns, config.max_columns);

  std::size_t swept = 0;
  for (std::size_t x = 1; x <= columns; ++x) {
    ++swept;
    std::uint64_t increments = 0;

    // PHASE 1: count tagging at column x.
    snapshot();
    for (const auto& view : views) {
      const auto& path = *view.path;
      if (path.size() < x || !cond1(path, x)) continue;
      auto& k = counters[index.of(path[x - 1])];
      if (view.upper_at(x - 1)) {
        ++k.t;
      } else {
        ++k.s;
      }
      ++increments;
    }

    // PHASE 2: count forwarding at column x (Cond1 + Cond2). The snapshot
    // now includes the tagging evidence gathered in phase 1.
    snapshot();
    for (const auto& view : views) {
      const auto& path = *view.path;
      if (path.size() < x || !cond1(path, x)) continue;
      // Cond2: nearest downstream tagger A_t with only forward ASes strictly
      // between x and t.
      std::size_t t_pos = 0;  // 1-based; 0 = not found
      for (std::size_t j = x + 1; j <= path.size(); ++j) {
        const std::size_t id = index.of(path[j - 1]);
        if (tagger_flag[id]) {
          t_pos = j;
          break;
        }
        if (!forward_flag[id]) break;
      }
      if (t_pos == 0) continue;
      auto& k = counters[index.of(path[x - 1])];
      if (view.upper_at(t_pos - 1)) {
        ++k.f;
      } else {
        ++k.c;
      }
      ++increments;
    }

    if (config.early_stop && increments == 0) break;
  }

  CounterMap out;
  out.reserve(index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    const auto& k = counters[i];
    if (k.t | k.s | k.f | k.c) out.emplace(index.asns()[i], k);
  }
  return InferenceResult(std::move(out), config.thresholds, swept);
}

InferenceResult ColumnEngine::run(const Dataset& dataset) const {
  std::vector<TupleView> views;
  views.reserve(dataset.size());
  for (const auto& tuple : dataset) {
    if (auto view = TupleView::prepare(tuple)) views.push_back(*view);
  }
  return sweep_columns(views, config_);
}

}  // namespace bgpcu::core
