// The paper's column-based inference engine (§5.6, Fig. 1, Listing 1).
//
// The engine sweeps the input tuples by *path index* (column), twice per
// column: first counting tagging evidence, then forwarding evidence.
// Knowledge gained at lower indices (starting with the trivially observable
// collector peers at index 1) feeds the correctness conditions at higher
// indices:
//
//   Cond1: every AS upstream of the target position currently classifies as
//          forward — otherwise the target's community output is hidden.
//   Cond2: a downstream tagger exists with only forward ASes strictly in
//          between — otherwise nothing can illuminate forwarding behavior.
//
// Class predicates are snapshotted at the start of each phase, which makes a
// phase's counting independent of tuple order (deterministic) while still
// transferring knowledge between phases and columns as in the paper.
#ifndef BGPCU_CORE_ENGINE_H
#define BGPCU_CORE_ENGINE_H

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "core/types.h"

namespace bgpcu::core {

/// Maximum supported path length; a bit in TupleView::upper_mask per
/// position. Post-sanitation no longer paths exist (the paper's maximum
/// is 19); overlong tuples are ignored by the engines.
inline constexpr std::size_t kMaxPathLength = 32;

/// Compact per-tuple view: borrowed path plus a bitmask telling, for every
/// path position, whether the community set contains a community whose upper
/// field equals the ASN at that position. Only this relation matters to the
/// counting rules, so precomputing it removes the inner-loop set scans — and
/// lets callers that keep tuples resident (the stream engine) pay the cost
/// once at ingest instead of once per sweep.
struct TupleView {
  const std::vector<bgp::Asn>* path = nullptr;
  std::uint32_t upper_mask = 0;

  [[nodiscard]] bool upper_at(std::size_t index0) const noexcept {
    return (upper_mask >> index0) & 1u;
  }

  /// Builds the view for `tuple` (which must outlive it); nullopt when the
  /// path is empty or longer than kMaxPathLength.
  [[nodiscard]] static std::optional<TupleView> prepare(const PathCommTuple& tuple);
};

/// Engine tuning knobs.
struct EngineConfig {
  Thresholds thresholds;  ///< Classification thresholds (paper default 0.99).
  /// Hard cap on the number of columns swept; 0 means "maximum path length".
  /// The paper observes counting naturally dying out around index 7.
  std::size_t max_columns = 0;
  /// Stop early once a full column increments no counter (safe: Cond1 is
  /// monotone per tuple, so a silent column implies all later ones are too).
  bool early_stop = true;
  /// Counting lanes per phase: each lane counts a contiguous slice of the
  /// tuple set into its own partial counters, merged after the phase barrier
  /// — output is bit-identical for every value (counter sums are
  /// order-independent). 1 = single lane executed inline on the caller (no
  /// pool involvement); 0 = auto (the shared TaskPool's parallelism, which
  /// is 1 on single-core hosts). Values above the machine's parallelism are
  /// honored (lanes queue on the pool), so tests can exercise the parallel
  /// path anywhere.
  std::size_t threads = 0;
};

/// Inference output: per-AS counters plus classification helpers.
class InferenceResult {
 public:
  InferenceResult(CounterMap counters, Thresholds thresholds, std::size_t columns_swept)
      : counters_(std::move(counters)),
        thresholds_(thresholds),
        columns_swept_(columns_swept) {}

  /// Counters for `asn`; zero-valued if the AS was never counted.
  [[nodiscard]] UsageCounters counters(bgp::Asn asn) const;

  /// Full class (tagging + forwarding) for `asn`.
  [[nodiscard]] UsageClass usage(bgp::Asn asn) const;
  [[nodiscard]] TaggingClass tagging(bgp::Asn asn) const;
  [[nodiscard]] ForwardingClass forwarding(bgp::Asn asn) const;

  /// Re-classifies everything under different thresholds (cheap: counters
  /// are threshold-independent only in so far as counting used the engine's
  /// thresholds; use ThresholdSweep for faithful ROC curves).
  [[nodiscard]] UsageClass usage(bgp::Asn asn, const Thresholds& th) const;

  [[nodiscard]] const CounterMap& counter_map() const noexcept { return counters_; }
  [[nodiscard]] const Thresholds& thresholds() const noexcept { return thresholds_; }
  [[nodiscard]] std::size_t columns_swept() const noexcept { return columns_swept_; }

 private:
  CounterMap counters_;
  Thresholds thresholds_;
  std::size_t columns_swept_ = 0;
};

/// The sweep kernel's input representation: every path element resolved to a
/// dense uint32 id exactly once (one hash lookup per element total, instead
/// of one per column per phase), tuples grouped by path length into flat
/// row-major id arrays with the upper masks alongside. The grouping makes
/// the per-column eligibility test (`path.size() >= x`) vanish — a column
/// simply skips whole groups — and the inner loops become branch-light flat
/// walks. Construction is a single pass over the views, which also folds in
/// max-path-length tracking. An IndexedDataset owns all of its storage, so a
/// sweep can outlive the views it was built from; the stream engine builds
/// one under its lock and sweeps outside it.
class IndexedDataset {
 public:
  /// All tuples of one path length, paths concatenated row-major.
  struct Group {
    std::uint32_t len = 0;
    std::vector<std::uint32_t> ids;    ///< count() * len dense ids.
    std::vector<std::uint32_t> masks;  ///< One upper mask per tuple.
    /// Tombstone bitmap: empty means every row is live (the from-scratch
    /// build never tombstones); otherwise one flag per row and the sweep
    /// skips rows flagged 0. Only IncrementalIndex ever populates this.
    std::vector<std::uint8_t> alive;

    [[nodiscard]] std::size_t count() const noexcept { return masks.size(); }
  };

  IndexedDataset() = default;
  explicit IndexedDataset(std::span<const TupleView> views);

  /// Groups in ascending path-length order. A from-scratch build stores only
  /// non-empty groups; an incrementally maintained dataset keeps one slot
  /// per possible length (empty groups contribute nothing to a sweep).
  [[nodiscard]] const std::vector<Group>& groups() const noexcept { return groups_; }
  /// Dense id -> ASN (ids are assigned in first-appearance order).
  [[nodiscard]] const std::vector<bgp::Asn>& asns() const noexcept { return asns_; }
  [[nodiscard]] std::size_t asn_count() const noexcept { return asns_.size(); }
  /// Longest path among *live* tuples (tombstoned rows excluded).
  [[nodiscard]] std::size_t max_len() const noexcept { return max_len_; }
  /// Number of live tuples (tombstoned rows excluded).
  [[nodiscard]] std::size_t tuple_count() const noexcept { return tuple_count_; }

 private:
  friend class IncrementalIndex;  ///< Patches groups in place across snapshots.

  std::vector<Group> groups_;
  std::vector<bgp::Asn> asns_;
  std::size_t max_len_ = 0;
  std::size_t tuple_count_ = 0;
};

/// The counting primitive: runs the full two-pass-per-column sweep over
/// prepared views and returns the per-AS counters. Deterministic for a given
/// view *set* — totals do not depend on view order (per-phase predicate
/// snapshots decouple counting from iteration order) nor on the lane count
/// (per-lane partial counters merge by addition). Both `ColumnEngine` and
/// `stream::StreamEngine` are thin wrappers over this, which is what makes
/// their results bit-for-bit comparable.
[[nodiscard]] InferenceResult sweep_columns(std::span<const TupleView> views,
                                            const EngineConfig& config);

/// Same kernel over a pre-built index — callers that already hold an
/// IndexedDataset (the stream engine's outside-the-lock sweep, repeated
/// sweeps over one dataset) skip the indexing pass.
[[nodiscard]] InferenceResult sweep_columns(const IndexedDataset& data,
                                            const EngineConfig& config);

/// Column-based counting engine. Stateless between runs; `run` is
/// deterministic for a given dataset + config.
class ColumnEngine {
 public:
  explicit ColumnEngine(EngineConfig config = {}) : config_(config) {}

  /// Runs the full two-pass-per-column sweep over `dataset` and returns the
  /// per-AS counters. Paths longer than kMaxPathLength hops are ignored.
  [[nodiscard]] InferenceResult run(const Dataset& dataset) const;

 private:
  EngineConfig config_;
};

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_ENGINE_H
