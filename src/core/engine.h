// The paper's column-based inference engine (§5.6, Fig. 1, Listing 1).
//
// The engine sweeps the input tuples by *path index* (column), twice per
// column: first counting tagging evidence, then forwarding evidence.
// Knowledge gained at lower indices (starting with the trivially observable
// collector peers at index 1) feeds the correctness conditions at higher
// indices:
//
//   Cond1: every AS upstream of the target position currently classifies as
//          forward — otherwise the target's community output is hidden.
//   Cond2: a downstream tagger exists with only forward ASes strictly in
//          between — otherwise nothing can illuminate forwarding behavior.
//
// Class predicates are snapshotted at the start of each phase, which makes a
// phase's counting independent of tuple order (deterministic) while still
// transferring knowledge between phases and columns as in the paper.
#ifndef BGPCU_CORE_ENGINE_H
#define BGPCU_CORE_ENGINE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "core/types.h"

namespace bgpcu::core {

/// Engine tuning knobs.
struct EngineConfig {
  Thresholds thresholds;  ///< Classification thresholds (paper default 0.99).
  /// Hard cap on the number of columns swept; 0 means "maximum path length".
  /// The paper observes counting naturally dying out around index 7.
  std::size_t max_columns = 0;
  /// Stop early once a full column increments no counter (safe: Cond1 is
  /// monotone per tuple, so a silent column implies all later ones are too).
  bool early_stop = true;
};

/// Inference output: per-AS counters plus classification helpers.
class InferenceResult {
 public:
  InferenceResult(CounterMap counters, Thresholds thresholds, std::size_t columns_swept)
      : counters_(std::move(counters)),
        thresholds_(thresholds),
        columns_swept_(columns_swept) {}

  /// Counters for `asn`; zero-valued if the AS was never counted.
  [[nodiscard]] UsageCounters counters(bgp::Asn asn) const;

  /// Full class (tagging + forwarding) for `asn`.
  [[nodiscard]] UsageClass usage(bgp::Asn asn) const;
  [[nodiscard]] TaggingClass tagging(bgp::Asn asn) const;
  [[nodiscard]] ForwardingClass forwarding(bgp::Asn asn) const;

  /// Re-classifies everything under different thresholds (cheap: counters
  /// are threshold-independent only in so far as counting used the engine's
  /// thresholds; use ThresholdSweep for faithful ROC curves).
  [[nodiscard]] UsageClass usage(bgp::Asn asn, const Thresholds& th) const;

  [[nodiscard]] const CounterMap& counter_map() const noexcept { return counters_; }
  [[nodiscard]] const Thresholds& thresholds() const noexcept { return thresholds_; }
  [[nodiscard]] std::size_t columns_swept() const noexcept { return columns_swept_; }

 private:
  CounterMap counters_;
  Thresholds thresholds_;
  std::size_t columns_swept_ = 0;
};

/// Column-based counting engine. Stateless between runs; `run` is
/// deterministic for a given dataset + config.
class ColumnEngine {
 public:
  explicit ColumnEngine(EngineConfig config = {}) : config_(config) {}

  /// Runs the full two-pass-per-column sweep over `dataset` and returns the
  /// per-AS counters. Paths longer than 32 hops (post-sanitation none exist;
  /// the paper's maximum is 19) are ignored.
  [[nodiscard]] InferenceResult run(const Dataset& dataset) const;

 private:
  EngineConfig config_;
};

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_ENGINE_H
