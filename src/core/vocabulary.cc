#include "core/vocabulary.h"

#include <algorithm>
#include <map>

namespace bgpcu::core {

const char* to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kInformational:
      return "informational";
    case ValueKind::kSignaling:
      return "signaling";
    case ValueKind::kUnclassified:
      return "unclassified";
  }
  return "?";
}

VocabularyMap infer_vocabulary(const Dataset& dataset, const InferenceResult& result,
                               const VocabularyConfig& config) {
  struct Accumulator {
    std::uint64_t appearances = 0;
    std::map<bgp::CommunityValue, std::uint64_t> values;
  };
  std::unordered_map<bgp::Asn, Accumulator> acc;

  for (const auto& tuple : dataset) {
    // Walk the path from the peer; stop at the first non-forward AS — beyond
    // it the observation says nothing about who tagged (Cond1, §5.2).
    for (std::size_t i = 0; i < tuple.path.size(); ++i) {
      const bgp::Asn asn = tuple.path[i];
      if (result.tagging(asn) == TaggingClass::kTagger) {
        auto& a = acc[asn];
        ++a.appearances;
        for (const auto& c : tuple.comms) {
          if (c.upper == asn) ++a.values[c];
        }
      }
      if (i + 1 < tuple.path.size() &&
          result.forwarding(asn) != ForwardingClass::kForward) {
        break;
      }
    }
  }

  VocabularyMap out;
  for (auto& [asn, a] : acc) {
    if (a.values.empty()) continue;
    std::vector<VocabularyEntry> entries;
    entries.reserve(a.values.size());
    for (const auto& [value, occurrences] : a.values) {
      VocabularyEntry entry;
      entry.value = value;
      entry.occurrences = occurrences;
      entry.appearances = a.appearances;
      entry.coverage = a.appearances == 0 ? 0.0
                                          : static_cast<double>(occurrences) /
                                                static_cast<double>(a.appearances);
      if (a.appearances >= config.min_appearances) {
        if (entry.coverage >= config.informational_min_coverage) {
          entry.kind = ValueKind::kInformational;
        } else if (entry.coverage <= config.signaling_max_coverage) {
          entry.kind = ValueKind::kSignaling;
        }
      }
      entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const VocabularyEntry& x, const VocabularyEntry& y) {
                return x.occurrences > y.occurrences;
              });
    out.emplace(asn, std::move(entries));
  }
  return out;
}

}  // namespace bgpcu::core
