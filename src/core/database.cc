#include "core/database.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bgpcu::core {

namespace {
constexpr const char* kMagic = "# bgpcu-inference-db v1";
}

void write_database(std::ostream& os, const InferenceResult& result) {
  const auto& th = result.thresholds();
  os << kMagic << '\n';
  os << "# thresholds tagger=" << th.tagger << " silent=" << th.silent
     << " forward=" << th.forward << " cleaner=" << th.cleaner << '\n';
  os << "# asn class t s f c\n";

  std::vector<bgp::Asn> asns;
  asns.reserve(result.counter_map().size());
  for (const auto& [asn, counters] : result.counter_map()) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  for (const auto asn : asns) {
    const auto k = result.counters(asn);
    os << asn << ' ' << result.usage(asn).code() << ' ' << k.t << ' ' << k.s << ' ' << k.f
       << ' ' << k.c << '\n';
  }
}

void write_database_file(const std::string& path, const InferenceResult& result) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open database file for writing: " + path);
  write_database(out, result);
  if (!out) throw std::runtime_error("short write to database file: " + path);
}

namespace {

/// getline that tolerates CRLF input (files that passed through Windows
/// tooling or HTTP transfers) by stripping one trailing '\r'.
bool getline_text(std::istream& is, std::string& line) {
  if (!std::getline(is, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

InferenceResult read_database(std::istream& is) {
  std::string line;
  std::uint64_t line_no = 1;
  if (!getline_text(is, line) || line != kMagic) {
    throw std::runtime_error("not a bgpcu inference database (bad magic, line 1)");
  }

  Thresholds thresholds;
  CounterMap counters;
  while (getline_text(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash, keyword;
      header >> hash >> keyword;
      if (keyword == "thresholds") {
        std::string kv;
        while (header >> kv) {
          const auto eq = kv.find('=');
          if (eq == std::string::npos) continue;
          const std::string key = kv.substr(0, eq);
          double value = 0;
          try {
            value = std::stod(kv.substr(eq + 1));
          } catch (const std::exception&) {
            throw std::runtime_error("malformed threshold value at line " +
                                     std::to_string(line_no) + ": " + kv);
          }
          if (key == "tagger") thresholds.tagger = value;
          if (key == "silent") thresholds.silent = value;
          if (key == "forward") thresholds.forward = value;
          if (key == "cleaner") thresholds.cleaner = value;
        }
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t asn = 0;
    std::string cls;
    UsageCounters k;
    if (!(row >> asn >> cls >> k.t >> k.s >> k.f >> k.c) || asn > 0xFFFFFFFFull) {
      throw std::runtime_error("malformed database row at line " + std::to_string(line_no) +
                               ": " + line);
    }
    counters.emplace(static_cast<bgp::Asn>(asn), k);
  }
  return InferenceResult(std::move(counters), thresholds, 0);
}

InferenceResult read_database_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open database file: " + path);
  return read_database(in);
}

}  // namespace bgpcu::core
