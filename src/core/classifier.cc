#include "core/classifier.h"

namespace bgpcu::core {

char to_char(TaggingClass c) noexcept {
  switch (c) {
    case TaggingClass::kNone:
      return 'n';
    case TaggingClass::kTagger:
      return 't';
    case TaggingClass::kSilent:
      return 's';
    case TaggingClass::kUndecided:
      return 'u';
  }
  return '?';
}

char to_char(ForwardingClass c) noexcept {
  switch (c) {
    case ForwardingClass::kNone:
      return 'n';
    case ForwardingClass::kForward:
      return 'f';
    case ForwardingClass::kCleaner:
      return 'c';
    case ForwardingClass::kUndecided:
      return 'u';
  }
  return '?';
}

bool is_tagger(const UsageCounters& k, const Thresholds& th) noexcept {
  const std::uint64_t total = k.t + k.s;
  return total > 0 && static_cast<double>(k.t) >= th.tagger * static_cast<double>(total);
}

bool is_silent(const UsageCounters& k, const Thresholds& th) noexcept {
  const std::uint64_t total = k.t + k.s;
  return total > 0 && static_cast<double>(k.s) >= th.silent * static_cast<double>(total);
}

bool is_forward(const UsageCounters& k, const Thresholds& th) noexcept {
  const std::uint64_t total = k.f + k.c;
  return total > 0 && static_cast<double>(k.f) >= th.forward * static_cast<double>(total);
}

bool is_cleaner(const UsageCounters& k, const Thresholds& th) noexcept {
  const std::uint64_t total = k.f + k.c;
  return total > 0 && static_cast<double>(k.c) >= th.cleaner * static_cast<double>(total);
}

TaggingClass classify_tagging(const UsageCounters& k, const Thresholds& th) noexcept {
  if (k.t + k.s == 0) return TaggingClass::kNone;
  if (is_tagger(k, th)) return TaggingClass::kTagger;
  if (is_silent(k, th)) return TaggingClass::kSilent;
  return TaggingClass::kUndecided;
}

ForwardingClass classify_forwarding(const UsageCounters& k, const Thresholds& th) noexcept {
  if (k.f + k.c == 0) return ForwardingClass::kNone;
  if (is_forward(k, th)) return ForwardingClass::kForward;
  if (is_cleaner(k, th)) return ForwardingClass::kCleaner;
  return ForwardingClass::kUndecided;
}

std::string UsageClass::code() const {
  return std::string{to_char(tagging), to_char(forwarding)};
}

bool UsageClass::full() const noexcept {
  const bool tag_decided =
      tagging == TaggingClass::kTagger || tagging == TaggingClass::kSilent;
  const bool fwd_decided =
      forwarding == ForwardingClass::kForward || forwarding == ForwardingClass::kCleaner;
  return tag_decided && fwd_decided;
}

UsageClass classify(const UsageCounters& k, const Thresholds& th) noexcept {
  return UsageClass{classify_tagging(k, th), classify_forwarding(k, th)};
}

}  // namespace bgpcu::core
