// Incremental maintenance of the sweep kernel's IndexedDataset across
// snapshots. A from-scratch IndexedDataset build is a full pass over the
// live tuple set — cheap next to a sweep, but it is the only work the stream
// engine still does under its exclusive lock, and at the reference size
// (~173k tuples) that ~27 ms critical section caps ingest throughput for
// high-snapshot-rate monitoring workloads. An IncrementalIndex keeps the
// dataset alive between snapshots and is patched in place by add/remove
// deltas instead of rebuilt:
//
//  - The ASN -> dense-id map persists; new ASes extend it, vanished ASes
//    keep their id (their counters come out zero and are filtered from the
//    result exactly as a from-scratch build would omit them).
//  - Adds append a row to the fixed per-path-length group; removes tombstone
//    the row in place (O(path) reference-count bookkeeping, no data motion).
//  - Tombstones are compacted lazily: a group whose dead fraction crosses
//    the configured threshold is rewritten densely, so the flat arrays stay
//    sweep-friendly without paying a compaction per eviction.
//  - When enough dense ids have no live reference left, the whole index is
//    rebuilt from its own live rows (ids reassigned, groups compacted) — the
//    backstop that keeps per-sweep counter arrays proportional to the live
//    AS universe under adversarial churn.
//
// The maintained dataset yields bit-identical sweep_columns output to a
// from-scratch build over the same live tuple set: counting is
// order-independent, tombstoned rows are skipped, max_len tracks live rows
// only, and zero-counter ids never reach the result map. That equivalence is
// the correctness contract (tests/core/test_incremental.cc plus the stream
// equivalence scenarios).
//
// Not thread-safe; the stream engine serializes apply() against sweeps via
// its single-flight snapshot protocol.
#ifndef BGPCU_CORE_INCREMENTAL_H
#define BGPCU_CORE_INCREMENTAL_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/types.h"

namespace bgpcu::core {

/// One index mutation. Producers (the stream engine's shards) journal these
/// on ingest/evict; IncrementalIndex::apply consumes them in order. `key` is
/// the producer-assigned stable identity of the tuple: an add and its later
/// remove must carry the same key, and keys are never reused.
struct IndexDelta {
  enum class Kind : std::uint8_t { kAdd, kRemove };

  Kind kind = Kind::kAdd;
  std::uint64_t key = 0;
  std::uint32_t upper_mask = 0;    ///< Adds only.
  std::vector<bgp::Asn> path;      ///< Adds only; owned (the producer's
                                   ///< stored tuple may die before apply).
};

/// Compaction/rebuild thresholds. The defaults keep maintenance amortized at
/// production scale; tests shrink them to exercise the triggers.
struct IncrementalIndexConfig {
  /// A group is compacted when it has at least this many dead rows AND the
  /// dead rows are at least half of the group's rows.
  std::size_t compact_min_dead_rows = 64;
  /// The whole index is rebuilt (ids reassigned, every group compacted) when
  /// at least this many dense ids have no live reference AND dead ids are at
  /// least half of all ids.
  std::size_t rebuild_min_dead_ids = 4096;
};

class IncrementalIndex {
 public:
  /// Lifetime maintenance counters (monotone).
  struct Stats {
    std::uint64_t adds_applied = 0;
    std::uint64_t removes_applied = 0;
    std::uint64_t group_compactions = 0;
    std::uint64_t full_rebuilds = 0;

    friend bool operator==(const Stats&, const Stats&) = default;
  };

  explicit IncrementalIndex(IncrementalIndexConfig config = {});

  /// Applies `deltas` in order. Empty/overlong add paths are ignored (the
  /// engines' contract); a remove whose key is unknown, or an add reusing a
  /// live key, throws std::invalid_argument — the producer's journal is
  /// corrupt and the caller must rebuild from authoritative state.
  void apply(std::vector<IndexDelta> deltas);

  /// The maintained dataset, valid until the next apply()/reset().
  [[nodiscard]] const IndexedDataset& dataset() const noexcept { return data_; }

  /// Drops everything (tuples, ASN map, stats keep accumulating) so a caller
  /// can rebuild from an authoritative live set via apply() of pure adds.
  void reset();

  /// Live tuples currently indexed.
  [[nodiscard]] std::size_t live_tuples() const noexcept { return data_.tuple_count(); }

  /// Tombstoned rows awaiting lazy compaction, summed across groups. With
  /// live_tuples() this gives the index's tombstone ratio — the gauge the
  /// observability layer exports to watch compaction pressure.
  [[nodiscard]] std::size_t dead_rows() const noexcept {
    std::size_t total = 0;
    for (const auto n : dead_rows_) total += n;
    return total;
  }

  /// Dense ids with no live reference left (full-rebuild pressure).
  [[nodiscard]] std::size_t dead_ids() const noexcept { return dead_ids_; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const IncrementalIndexConfig& config() const noexcept { return config_; }

  /// Appends the index's dense-array image to `out`: the full ASN -> id map
  /// (dead ids included, so row ids need no remapping) and, per path-length
  /// group, the *live* rows' ids/masks/keys — tombstones are compacted away
  /// on write. Hash maps and refcounts are derived state and are rebuilt on
  /// load. The image carries no checksum; the durable store frames it.
  void serialize_image(std::vector<std::uint8_t>& out) const;

  /// Replaces the index's contents with a serialized image. Returns false —
  /// leaving the index reset/empty — on any structural inconsistency (bad
  /// magic/version, truncation, out-of-range ids, duplicate keys); the
  /// caller falls back to a full rebuild from authoritative state. Never
  /// throws on malformed input.
  [[nodiscard]] bool load_image(std::span<const std::uint8_t> image);

 private:
  /// Where one live tuple's row sits: groups_[len - 1], row index `row`.
  struct RowRef {
    std::uint32_t len = 0;
    std::uint32_t row = 0;
  };

  void add(std::uint64_t key, const std::vector<bgp::Asn>& path, std::uint32_t upper_mask);
  void remove(std::uint64_t key);
  void compact_group(std::size_t g);
  void rebuild();
  [[nodiscard]] std::size_t live_rows(std::size_t g) const noexcept;
  void refresh_max_len() noexcept;

  IncrementalIndexConfig config_;
  IndexedDataset data_;  ///< groups_ holds one slot per length 1..kMaxPathLength.
  std::unordered_map<bgp::Asn, std::uint32_t> id_of_;
  std::vector<std::uint32_t> id_refs_;  ///< Live path-element references per id.
  std::size_t dead_ids_ = 0;            ///< Ids whose refcount dropped to zero.
  std::unordered_map<std::uint64_t, RowRef> row_of_;
  std::vector<std::vector<std::uint64_t>> row_keys_;  ///< Per group, parallel to masks.
  std::vector<std::size_t> dead_rows_;                ///< Per group tombstone count.
  Stats stats_;
};

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_INCREMENTAL_H
