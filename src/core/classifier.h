// Per-AS usage counters and the threshold classifier of §5.3/§5.5: counters
// t/s (tagging evidence) and f/c (forwarding evidence) turn into the classes
// tagger/silent/undecided/none and forward/cleaner/undecided/none.
#ifndef BGPCU_CORE_CLASSIFIER_H
#define BGPCU_CORE_CLASSIFIER_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "bgp/asn.h"

namespace bgpcu::core {

/// Tagging behavior classes (§3.3.1 / §5.5).
enum class TaggingClass : std::uint8_t { kNone, kTagger, kSilent, kUndecided };

/// Forwarding behavior classes (§3.3.1 / §5.5).
enum class ForwardingClass : std::uint8_t { kNone, kForward, kCleaner, kUndecided };

/// Single-character code per the paper: t/s/u/n and f/c/u/n.
[[nodiscard]] char to_char(TaggingClass c) noexcept;
[[nodiscard]] char to_char(ForwardingClass c) noexcept;

/// Evidence counters for one AS (§5.3).
struct UsageCounters {
  std::uint64_t t = 0;  ///< Own community present under Cond1.
  std::uint64_t s = 0;  ///< Own community absent under Cond1.
  std::uint64_t f = 0;  ///< Downstream tagger's community present under Cond1+Cond2.
  std::uint64_t c = 0;  ///< Downstream tagger's community absent under Cond1+Cond2.

  friend bool operator==(const UsageCounters&, const UsageCounters&) = default;
};

/// Classifier thresholds. The paper tunes all four to 0.99 ("we want the
/// threshold to be as high as possible, but at the same time allow for
/// exceptions"); Fig. 2 sweeps 0.50–1.00.
struct Thresholds {
  double tagger = 0.99;
  double silent = 0.99;
  double forward = 0.99;
  double cleaner = 0.99;

  /// Uniform thresholds at `value` for all four classes.
  static constexpr Thresholds uniform(double value) noexcept {
    return Thresholds{value, value, value, value};
  }
};

/// is_tagger predicate: share of t over tagging evidence meets the threshold.
[[nodiscard]] bool is_tagger(const UsageCounters& k, const Thresholds& th) noexcept;
/// is_silent predicate.
[[nodiscard]] bool is_silent(const UsageCounters& k, const Thresholds& th) noexcept;
/// is_forward predicate: share of f over forwarding evidence meets threshold.
[[nodiscard]] bool is_forward(const UsageCounters& k, const Thresholds& th) noexcept;
/// is_cleaner predicate.
[[nodiscard]] bool is_cleaner(const UsageCounters& k, const Thresholds& th) noexcept;

/// get_tagging (§5.5): none when no evidence, else tagger/silent/undecided.
[[nodiscard]] TaggingClass classify_tagging(const UsageCounters& k, const Thresholds& th) noexcept;
/// get_forwarding (§5.5).
[[nodiscard]] ForwardingClass classify_forwarding(const UsageCounters& k,
                                                  const Thresholds& th) noexcept;

/// Full classification of one AS.
struct UsageClass {
  TaggingClass tagging = TaggingClass::kNone;
  ForwardingClass forwarding = ForwardingClass::kNone;

  /// Two-character code, e.g. "tf", "sc", "nu" (§5.5 get_class).
  [[nodiscard]] std::string code() const;

  /// True when both behaviors are decided (t/s and f/c) — the paper's
  /// "full classification".
  [[nodiscard]] bool full() const noexcept;

  friend bool operator==(const UsageClass&, const UsageClass&) = default;
};

/// get_class (§5.5).
[[nodiscard]] UsageClass classify(const UsageCounters& k, const Thresholds& th) noexcept;

/// Counter table keyed by ASN — output of the counting engines.
using CounterMap = std::unordered_map<bgp::Asn, UsageCounters>;

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_CLASSIFIER_H
