// Inference database serialization. The paper releases its algorithm and
// per-AS inferences as a public resource [5]; this module defines that
// artifact for this library: a line-oriented text format that round-trips an
// InferenceResult, diffable and greppable:
//
//   # bgpcu-inference-db v1
//   # thresholds tagger=0.99 silent=0.99 forward=0.99 cleaner=0.99
//   # asn class t s f c
//   3356 tf 1042 3 977 0
//   ...
#ifndef BGPCU_CORE_DATABASE_H
#define BGPCU_CORE_DATABASE_H

#include <iosfwd>
#include <string>

#include "core/engine.h"

namespace bgpcu::core {

/// Writes `result` (sorted by ASN) to `os`.
void write_database(std::ostream& os, const InferenceResult& result);

/// Writes to a file; throws std::runtime_error on I/O failure.
void write_database_file(const std::string& path, const InferenceResult& result);

/// Parses a database produced by write_database. Throws std::runtime_error
/// on malformed input (unknown header version, bad row).
[[nodiscard]] InferenceResult read_database(std::istream& is);

/// Reads from a file; throws std::runtime_error on I/O failure.
[[nodiscard]] InferenceResult read_database_file(const std::string& path);

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_DATABASE_H
