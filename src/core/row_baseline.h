// The row-based counting baseline the paper contrasts with its column-based
// design (§5.7, Appendix Listing 2). Each path is processed independently,
// without pre-existing knowledge, so no Cond1/Cond2 gating is possible: the
// approach is cheaper per pass but counts through cleaners and unilluminated
// segments, trading away precision. Kept as an ablation comparator.
#ifndef BGPCU_CORE_ROW_BASELINE_H
#define BGPCU_CORE_ROW_BASELINE_H

#include "core/classifier.h"
#include "core/engine.h"
#include "core/types.h"

namespace bgpcu::core {

/// Row-based counting engine (Listing 2).
class RowEngine {
 public:
  explicit RowEngine(Thresholds thresholds = {}) : thresholds_(thresholds) {}

  /// Phase 1 counts tagging for every position of every path; phase 2 walks
  /// each path from the origin side: when the downstream neighbor's ASN
  /// appears as a community upper field, every AS upstream of it gets
  /// forward credit, otherwise the immediate upstream AS gets cleaner credit.
  [[nodiscard]] InferenceResult run(const Dataset& dataset) const;

 private:
  Thresholds thresholds_;
};

}  // namespace bgpcu::core

#endif  // BGPCU_CORE_ROW_BASELINE_H
